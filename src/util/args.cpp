#include "util/args.hpp"

#include <algorithm>
#include <stdexcept>

namespace ranm {
namespace {

/// Levenshtein distance, for "did you mean" suggestions. Keys are short
/// (tens of characters), so the quadratic DP is effectively free.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

ArgParser::ArgParser(const std::vector<std::string>& tokens) {
  parse(tokens);
}

void ArgParser::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      positionals_.push_back(tok);
      continue;
    }
    const std::string body = tok.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("ArgParser: bare '--' not supported");
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      // The equals form used to parse but was documented and tested
      // nowhere in the tools; rejecting it loudly beats an option that
      // sometimes reads as its space-separated twin and sometimes not.
      throw std::invalid_argument(
          "ArgParser: '--" + body + "' uses the unsupported '--key=value' "
          "form; use '--" + body.substr(0, eq) + " " + body.substr(eq + 1) +
          "'");
    }
    // `--key value` if the next token exists and is not an option;
    // otherwise a bare flag.
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      options_[body].push_back({tokens[i + 1], false});
      ++i;
    } else {
      options_[body].push_back({"", true});
    }
  }
}

const std::string& ArgParser::positional(std::size_t i) const {
  if (i >= positionals_.size()) {
    throw std::invalid_argument("ArgParser: missing positional argument " +
                                std::to_string(i));
  }
  return positionals_[i];
}

bool ArgParser::has(const std::string& key) const {
  return options_.contains(key);
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const Occurrence& last = it->second.back();
  if (last.is_flag) {
    throw std::invalid_argument("ArgParser: option --" + key +
                                " requires a value");
  }
  return last.value;
}

std::vector<std::string> ArgParser::get_all(const std::string& key) const {
  auto it = options_.find(key);
  if (it == options_.end()) return {};
  std::vector<std::string> out;
  out.reserve(it->second.size());
  for (const Occurrence& occ : it->second) {
    if (occ.is_flag) {
      throw std::invalid_argument("ArgParser: option --" + key +
                                  " requires a value");
    }
    out.push_back(occ.value);
  }
  return out;
}

std::string ArgParser::require(const std::string& key) const {
  if (!has(key)) {
    throw std::invalid_argument("ArgParser: required option --" + key +
                                " missing");
  }
  return get(key, "");
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t fallback) const {
  if (!has(key)) return fallback;
  const std::string v = get(key, "");
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("ArgParser: --" + key + " expects an " +
                                "integer, got '" + v + "'");
  }
}

std::size_t ArgParser::get_size(const std::string& key, std::size_t fallback,
                                std::size_t max_value) const {
  if (!has(key)) return fallback;
  const std::int64_t v = get_int(key, 0);
  if (v < 0 || std::uint64_t(v) > max_value) {
    throw std::invalid_argument(
        "ArgParser: --" + key + " must be in 0.." +
        std::to_string(max_value) + ", got " + std::to_string(v));
  }
  return std::size_t(v);
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  const std::string v = get(key, "");
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("ArgParser: --" + key + " expects a " +
                                "number, got '" + v + "'");
  }
}

std::vector<std::string> ArgParser::keys() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& [k, v] : options_) out.push_back(k);
  return out;
}

void ArgParser::check_known(
    std::initializer_list<std::string_view> known) const {
  for (const auto& [key, occurrences] : options_) {
    bool is_known = false;
    for (const std::string_view k : known) {
      if (key == k) {
        is_known = true;
        break;
      }
    }
    if (is_known) continue;
    std::string msg = "ArgParser: unknown option --" + key;
    // Suggest the closest known key when the distance says "typo", not
    // "different word": --shard -> --shards, --thread -> --threads.
    std::string_view best;
    std::size_t best_dist = std::string::npos;
    for (const std::string_view k : known) {
      const std::size_t d = edit_distance(key, k);
      if (d < best_dist) {
        best_dist = d;
        best = k;
      }
    }
    if (best_dist != std::string::npos && best_dist <= 2) {
      msg += " (did you mean --" + std::string(best) + "?)";
    }
    throw std::invalid_argument(msg);
  }
}

}  // namespace ranm
