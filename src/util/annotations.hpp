// Clang Thread Safety Analysis support: annotation macros plus
// capability-annotated synchronisation wrappers.
//
// Every lock-guarded structure in ranm (util/thread_pool,
// util/bounded_queue, the serving layer's completion queue and buffer
// pool) declares *which* mutex guards *which* data with the macros below.
// Under clang the declarations become -Wthread-safety diagnostics — an
// access to a GUARDED_BY field without its mutex held is a build error
// (CI runs a clang job with -Wthread-safety -Werror), not a TSan lottery
// ticket that only fires if a data race happens to interleave during a
// sanitizer run. Under gcc (the container's default toolchain) the macros
// expand to nothing and the wrappers are zero-cost pass-throughs over
// std::mutex / std::condition_variable, so behaviour is identical.
//
// The wrappers exist because libstdc++'s std::mutex carries no capability
// annotations: the analysis can only reason about types that declare
// themselves capabilities (Hutchins et al., "C/C++ Thread Safety
// Analysis"). Rules of use:
//
//   - Guard data, not code: each shared field gets RANM_GUARDED_BY(mu_).
//   - Lock with MutexLock (scoped); the analysis tracks its lifetime.
//   - Condition waits spell their predicate as a while-loop in the
//     waiting function (`while (!ready_) cv_.wait(lock);`) instead of a
//     lambda predicate — the analysis does not propagate the held
//     capability into closures, and the loop form keeps every guarded
//     access inside the annotated scope.
#pragma once

#include <condition_variable>
#include <mutex>

// The attributes need clang; __has_attribute keeps ancient clangs and
// clang-derived compilers without TSA honest.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RANM_TSA(x) __attribute__((x))
#endif
#endif
#ifndef RANM_TSA
#define RANM_TSA(x)  // not clang: annotations compile away
#endif

#define RANM_CAPABILITY(x) RANM_TSA(capability(x))
#define RANM_SCOPED_CAPABILITY RANM_TSA(scoped_lockable)
/// Field is protected by the given mutex: every read/write needs it held.
#define RANM_GUARDED_BY(x) RANM_TSA(guarded_by(x))
/// Pointee (not the pointer) is protected by the given mutex.
#define RANM_PT_GUARDED_BY(x) RANM_TSA(pt_guarded_by(x))
/// Function requires the capability held on entry (caller locks).
#define RANM_REQUIRES(...) RANM_TSA(requires_capability(__VA_ARGS__))
/// Function must NOT hold the capability on entry (it locks internally);
/// turns self-deadlock into a compile error.
#define RANM_EXCLUDES(...) RANM_TSA(locks_excluded(__VA_ARGS__))
#define RANM_ACQUIRE(...) RANM_TSA(acquire_capability(__VA_ARGS__))
#define RANM_RELEASE(...) RANM_TSA(release_capability(__VA_ARGS__))
#define RANM_RETURN_CAPABILITY(x) RANM_TSA(lock_returned(x))
/// Escape hatch for code the analysis cannot model; every use carries a
/// comment saying why it is sound.
#define RANM_NO_THREAD_SAFETY_ANALYSIS RANM_TSA(no_thread_safety_analysis)

namespace ranm {

class CondVar;

/// std::mutex wearing the `capability` attribute so the analysis can name
/// it in GUARDED_BY/REQUIRES clauses. Same size, same semantics.
class RANM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RANM_ACQUIRE() { mu_.lock(); }
  void unlock() RANM_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over Mutex (the annotated std::unique_lock shape: CondVar
/// waits need an unlockable guard, so this wraps unique_lock rather than
/// lock_guard). Acquires in the constructor, releases in the destructor,
/// and tells the analysis so.
class RANM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RANM_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RANM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable taking MutexLock. wait() atomically releases and
/// reacquires the lock; from the analysis' point of view the capability
/// is held across the call, which is exactly the guarantee the caller
/// observes on both sides of it. Predicates are spelled as while-loops at
/// the call site (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ranm
