#include "util/table.hpp"

#include <cstdio>
#include <sstream>

namespace ranm {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::vector<std::string>> all;
  if (!header_.empty()) all.push_back(header_);
  for (const auto& r : rows_) all.push_back(r);

  std::size_t ncols = 0;
  for (const auto& r : all) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  for (const auto& r : all)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < ncols; ++c) {
      std::string cell = c < r.size() ? r[c] : "";
      cell.resize(width[c], ' ');
      out << cell;
      if (c + 1 < ncols) out << " | ";
    }
    out << '\n';
  };
  std::size_t row_index = 0;
  if (!header_.empty()) {
    emit_row(all[row_index++]);
    for (std::size_t c = 0; c < ncols; ++c) {
      out << std::string(width[c], '-');
      if (c + 1 < ncols) out << "-+-";
    }
    out << '\n';
  }
  for (; row_index < all.size(); ++row_index) emit_row(all[row_index]);
  return out.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

}  // namespace ranm
