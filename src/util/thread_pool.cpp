#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace ranm {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  threads = resolve_thread_count(threads);
  workers_.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Shared per-call state. Workers hold the shared_ptr, so the state (and
  // with it the completion protocol) stays alive even if a worker is still
  // inside its drain loop after the caller has returned.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    Mutex mu;
    CondVar cv;
    std::exception_ptr error RANM_GUARDED_BY(mu);  // first failure only
  };
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;  // outlives the call: we block until done == count

  auto drain = [batch] {
    for (;;) {
      const std::size_t i =
          batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->count) return;
      try {
        (*batch->body)(i);
      } catch (...) {
        const MutexLock lock(batch->mu);
        if (!batch->error) batch->error = std::current_exception();
      }
      if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          batch->count) {
        // Lock pairs with the caller's predicate check so the final
        // notification cannot slip between its test and its wait.
        const MutexLock lock(batch->mu);
        batch->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), count - 1);
  {
    const MutexLock lock(mu_);
    for (std::size_t t = 0; t < helpers; ++t) tasks_.emplace_back(drain);
  }
  cv_.notify_all();

  drain();  // the calling thread is one of the lanes

  MutexLock lock(batch->mu);
  while (batch->done.load(std::memory_order_acquire) != batch->count) {
    batch->cv.wait(lock);
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace ranm
