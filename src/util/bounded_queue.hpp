// Bounded blocking MPMC queue — the backpressure primitive of the
// serving layer.
//
// The concurrent server's event loop produces requests, a fixed pool of
// worker threads consumes them, and the queue's capacity is the explicit
// limit on buffered work: when it is full, the producer does *not* block
// (a blocked event loop serves nobody) — try_push fails and the caller
// answers with an overload error instead of queueing unbounded memory.
// Consumers block in pop() until an item arrives or the queue is closed
// and drained, which is exactly the graceful-shutdown shape: close() lets
// every queued item finish, then wakes all poppers with "no more work".
//
// All shared state is RANM_GUARDED_BY(mu_): under clang, touching it
// without the lock is a -Wthread-safety build error (see
// util/annotations.hpp).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

#include "util/annotations.hpp"

namespace ranm {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` bounds the number of queued (not yet popped) items;
  /// must be >= 1.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("BoundedQueue: capacity must be >= 1");
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues without blocking. Returns false — leaving `item` untouched —
  /// when the queue is full (backpressure: the caller reports overload)
  /// or already closed.
  [[nodiscard]] bool try_push(T&& item) RANM_EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt means "no more work, ever" (worker exit signal).
  [[nodiscard]] std::optional<T> pop() RANM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) cv_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// After close(), try_push fails and poppers drain the remaining items
  /// before observing nullopt. Idempotent.
  void close() RANM_EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const RANM_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ RANM_GUARDED_BY(mu_);
  bool closed_ RANM_GUARDED_BY(mu_) = false;
};

}  // namespace ranm
