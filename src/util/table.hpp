// Minimal fixed-width text table renderer used by the benchmark harness to
// print paper-style result tables.
#pragma once

#include <string>
#include <vector>

namespace ranm {

/// Accumulates rows of strings and renders them with aligned columns,
/// a header separator, and an optional title, e.g.
///
///   == Table: false positive rates ==
///   monitor     | FP%    | detect%
///   ------------+--------+--------
///   standard    | 0.62   | 91.2
///   robust      | 0.125  | 90.8
class TextTable {
 public:
  explicit TextTable(std::string title = "");

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> cells);
  /// Appends a data row; the cell count may differ from the header
  /// (short rows are padded).
  void add_row(std::vector<std::string> cells);
  /// Renders the table to a string (trailing newline included).
  [[nodiscard]] std::string str() const;
  /// Renders and writes to stdout.
  void print() const;

  /// Formats a double with the given precision (helper for callers).
  static std::string num(double v, int precision = 4);
  /// Formats a percentage (value already in percent units).
  static std::string pct(double v, int precision = 3);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ranm
