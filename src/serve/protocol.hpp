// Wire protocol of the monitor serving layer.
//
// The daemon and its clients speak length-prefixed binary frames over a
// byte stream (in deployment: a Unix-domain socket). Every frame is
//
//   u32 magic "RSV1" | u32 type | u64 payload_len | payload bytes
//
// little-endian, with payload_len bounded by kMaxFramePayload *before*
// the payload buffer allocates — the same no-allocation-from-unvalidated-
// headers discipline as the artifact loaders (io/wire), so a corrupted or
// hostile frame errors out instead of zero-filling gigabytes. Payload
// decoding goes through the bounded io:: primitives for the same reason,
// and rejects trailing garbage: a frame either parses exactly or throws
// std::runtime_error.
//
// Request/response pairs (the protocol is strictly client-initiated):
//
//   kQuery    -> kQueryReply    n input tensors -> n warn flags (0/1)
//             -> kOverloaded    bounded request queue full: backpressure,
//                               retry later; the connection stays usable
//   kStats    -> kStatsReply    per-worker + aggregate counters and the
//                               per-shard table `ranm_cli info` prints
//   kShutdown -> kShutdownAck   graceful daemon drain + stop
//   kObserve  -> kObserveReply  stage n live input tensors for the next
//                               rebuild; reply carries accepted/staged/
//                               novelty counters
//   kSwap     -> kSwapReply     rebuild a refreshed monitor from the staged
//                               samples and publish it atomically; every
//                               query is answered entirely by the old or
//                               the new monitor, never a blend
//   kRollback -> kRollbackReply restore a persisted earlier generation
//                               (target 0 = the previous one)
//   any       -> kError         length-prefixed message; malformed frames
//                               additionally close the connection (the
//                               stream may have desynced)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.hpp"

namespace ranm::serve {

enum class FrameType : std::uint32_t {
  kQuery = 1,
  kQueryReply = 2,
  kStats = 3,
  kStatsReply = 4,
  kShutdown = 5,
  kShutdownAck = 6,
  kError = 7,
  // Explicit backpressure: the server's bounded request queue was full, so
  // the query was rejected instead of buffered without bound. Carries an
  // error-style message payload; the connection stays usable.
  kOverloaded = 8,
  // ---- monitor lifecycle (online adaptation) ----
  // Stage a batch of live inputs for the next rebuild. Payload reuses the
  // query codec (u64 count + tensors).
  kObserve = 9,
  kObserveReply = 10,
  // Rebuild a refreshed monitor from the staged samples in the background
  // and publish it via an atomic snapshot swap. Empty request payload.
  kSwap = 11,
  kSwapReply = 12,
  // Restore a persisted earlier generation. Payload: u64 target generation,
  // 0 meaning "the previous one".
  kRollback = 13,
  kRollbackReply = 14,
};

constexpr std::uint32_t kFrameMagic = 0x52535631U;  // "RSV1"
/// Wire frame header: magic + type + payload length, 16 bytes.
constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard cap on one frame's payload — checked before the payload buffer
/// allocates. 64 MiB holds a ~16k-sample query over a 1k-float layer.
constexpr std::uint64_t kMaxFramePayload = 1ULL << 26;
/// Cap on the sample count of one query frame.
constexpr std::uint64_t kMaxQuerySamples = 1ULL << 16;
/// Cap on shard entries in a stats reply (matches the artifact cap).
constexpr std::uint64_t kMaxStatsShards = 4096;
/// Cap on worker entries in a stats reply.
constexpr std::uint64_t kMaxStatsWorkers = 1024;
/// Cap on any string carried in a frame (descriptions, error messages).
constexpr std::uint64_t kMaxFrameString = 4096;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

struct FrameHeader {
  FrameType type = FrameType::kError;
  std::uint64_t payload_len = 0;
};

/// Renders a frame header into a 16-byte transport buffer.
void encode_frame_header(char (&buf)[kFrameHeaderBytes], FrameType type,
                         std::uint64_t payload_len);
/// Validates magic, frame type, and payload bound; throws
/// std::runtime_error on anything malformed. This runs before any
/// payload-sized allocation on every transport.
[[nodiscard]] FrameHeader decode_frame_header(
    const char (&buf)[kFrameHeaderBytes]);

/// Stream transport (also the unit the robustness tests target).
void write_frame(std::ostream& out, FrameType type,
                 std::string_view payload);
[[nodiscard]] Frame read_frame(std::istream& in);

// ---- payload codecs -------------------------------------------------------
//
// Decoders take a string_view and read through io::ByteView — zero-copy,
// no per-frame stream construction. The *_into encoders append to a
// caller-owned buffer (cleared first) so the serving hot path reuses one
// scratch string across requests instead of allocating per frame; the
// by-value forms are convenience wrappers over them.

/// Query: u64 sample count (<= kMaxQuerySamples) + the input tensors.
/// Throws std::invalid_argument when the batch exceeds the sample cap or
/// the encoded payload would exceed kMaxFramePayload.
void encode_query_into(std::string& out, std::span<const Tensor> inputs);
[[nodiscard]] std::string encode_query(std::span<const Tensor> inputs);
[[nodiscard]] std::vector<Tensor> decode_query(std::string_view payload);

/// Largest batch of same-shaped samples whose query frame stays under
/// kMaxFramePayload (clients chunk their streams with this).
[[nodiscard]] std::size_t max_query_batch(const Tensor& sample);

/// Query reply: u64 count + one warn byte (0/1) per sample.
void encode_verdicts_into(std::string& out,
                          std::span<const std::uint8_t> warns);
[[nodiscard]] std::string encode_verdicts(
    std::span<const std::uint8_t> warns);
void decode_verdicts_into(std::string_view payload,
                          std::vector<std::uint8_t>& warns);
[[nodiscard]] std::vector<std::uint8_t> decode_verdicts(
    std::string_view payload);

/// Observe reply: how the staged-sample pool absorbed one batch.
struct ObserveReply {
  std::uint64_t accepted = 0;      // samples staged from this frame
  std::uint64_t staged_total = 0;  // samples now awaiting the next swap
  std::uint64_t novel = 0;         // frame samples the current monitor warns on
};

void encode_observe_reply_into(std::string& out, const ObserveReply& reply);
[[nodiscard]] std::string encode_observe_reply(const ObserveReply& reply);
[[nodiscard]] ObserveReply decode_observe_reply(std::string_view payload);

/// Swap reply: identity of the freshly published generation.
struct SwapReply {
  std::uint64_t generation = 0;      // generation now being served
  std::uint64_t staged_applied = 0;  // staged samples folded into the rebuild
  std::uint64_t duration_us = 0;     // rebuild + publish wall time
  std::string monitor;               // describe() of the published monitor
};

[[nodiscard]] std::string encode_swap_reply(const SwapReply& reply);
[[nodiscard]] SwapReply decode_swap_reply(std::string_view payload);

/// Rollback request: u64 target generation, 0 meaning "the previous one".
[[nodiscard]] std::string encode_rollback(std::uint64_t target);
[[nodiscard]] std::uint64_t decode_rollback(std::string_view payload);

struct RollbackReply {
  std::uint64_t generation = 0;  // generation now being served
  std::string monitor;           // describe() of the restored monitor
};

[[nodiscard]] std::string encode_rollback_reply(const RollbackReply& reply);
[[nodiscard]] RollbackReply decode_rollback_reply(std::string_view payload);

/// Per-shard statistics mirrored from ShardedMonitor::ShardStats.
struct ShardStatsWire {
  std::uint64_t neurons = 0;
  std::uint64_t bdd_nodes = 0;
  std::uint64_t cubes_inserted = 0;
  std::uint64_t novel = 0;  // staged samples novel to this shard's region
  double patterns = 0.0;    // stored words (-1: not pattern-based)
};

/// One worker replica's lifetime counters. With N concurrent workers the
/// aggregate alone hides imbalance, so stats carry both.
struct WorkerCountersWire {
  std::uint64_t queries = 0;   // query frames answered by this worker
  std::uint64_t samples = 0;   // feature vectors judged
  std::uint64_t warnings = 0;  // warn verdicts issued
};

/// Stats reply: service identity, per-worker plus aggregate lifetime
/// counters, serving-loop telemetry, and (for sharded monitors) the
/// per-shard table `ranm_cli info` prints.
struct ServiceStats {
  std::string monitor;  // Monitor::describe()
  std::uint64_t dimension = 0;
  std::uint64_t layer = 0;
  std::uint64_t threads = 1;
  std::uint64_t queries = 0;   // aggregate across workers
  std::uint64_t samples = 0;
  std::uint64_t warnings = 0;
  std::vector<WorkerCountersWire> workers;  // per replica; empty: direct
  // Serving-loop telemetry (zero when the service is driven in-process).
  std::uint64_t in_flight = 0;       // queries dispatched, not yet replied
  std::uint64_t queue_depth = 0;     // requests waiting for a worker
  std::uint64_t queue_capacity = 0;  // bound that triggers kOverloaded
  std::uint64_t overloaded = 0;      // queries rejected with kOverloaded
  // Monitor-lifecycle telemetry (generation 0: adaptation disabled).
  std::uint64_t generation = 0;       // published snapshot generation
  std::uint64_t staged_samples = 0;   // samples awaiting the next swap
  std::uint64_t swaps = 0;            // snapshot swaps published
  std::uint64_t rollbacks = 0;        // generations restored
  std::uint64_t rolling_samples = 0;  // recent-window samples judged
  std::uint64_t rolling_warnings = 0;  // recent-window warn verdicts
  std::string shard_strategy;  // empty: unsharded monitor
  std::uint64_t shard_seed = 0;
  std::vector<ShardStatsWire> shards;  // empty: unsharded monitor
};

[[nodiscard]] std::string encode_stats(const ServiceStats& stats);
[[nodiscard]] ServiceStats decode_stats(std::string_view payload);

/// Error/overload payload: one bounded message string.
[[nodiscard]] std::string encode_error(std::string_view message);
[[nodiscard]] std::string decode_error(std::string_view payload);

}  // namespace ranm::serve
