// Shared online-adaptation state of one serving process.
//
// Every worker replica of a MonitorService clones the *monitor*, but all
// clones share one AdaptState: the staged-sample pool feeding the next
// rebuild, the per-shard novelty counters behind kStats, the generation
// counter, and the in-memory + on-disk history kRollback restores from.
// One mutex guards all of it — staging copies a few KB per observe frame
// and swap/rollback are rare control operations, so contention is not a
// concern on this path (queries never touch it).
//
// Generations are monotonic and never reused: the initial monitor is
// generation 1, every swap publishes max-assigned + 1 — also after a
// rollback, so "which artifact was generation N" stays unambiguous
// across the whole process lifetime and the rotated on-disk store.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/feature_batch.hpp"
#include "serve/snapshot_store.hpp"
#include "util/annotations.hpp"

namespace ranm::serve {

/// Lifecycle counters mirrored into ServiceStats.
struct AdaptTelemetry {
  std::uint64_t generation = 0;
  std::uint64_t staged_samples = 0;
  std::uint64_t swaps = 0;
  std::uint64_t rollbacks = 0;
  std::vector<std::uint64_t> shard_novel;  // staged novelty per shard
};

/// What a background rebuild starts from: the pristine bytes of the
/// currently served generation plus a copy of the staged features
/// (sample-major, staged_count x dimension floats).
struct RebuildInput {
  std::string base_artifact;
  std::vector<float> features;
  std::uint64_t staged_count = 0;
};

class AdaptState {
 public:
  /// Cap on staged samples awaiting a swap; past it, stage() throws and
  /// the operator must swap (or drop the connection's stream). Injectable
  /// for tests.
  static constexpr std::size_t kMaxStagedSamples = 1ULL << 20;

  /// `base_artifact` is the serialized generation-1 monitor; `shard_count`
  /// sizes the novelty counters (0 for unsharded monitors).
  AdaptState(std::size_t dimension, std::string base_artifact,
             std::size_t shard_count,
             std::size_t max_staged = kMaxStagedSamples);

  [[nodiscard]] std::size_t dimension() const { return dimension_; }

  /// Stages one observed feature batch plus its per-shard novelty counts;
  /// returns the staged total. Throws std::runtime_error past the staging
  /// cap.
  std::uint64_t stage(const FeatureBatch& features,
                      std::span<const std::uint64_t> shard_novel)
      RANM_EXCLUDES(mu_);

  /// Snapshot of current-generation bytes + staged features for a
  /// background rebuild. Staging may continue concurrently; commit_swap
  /// drains exactly the prefix this copy saw.
  [[nodiscard]] RebuildInput rebuild_input() const RANM_EXCLUDES(mu_);

  /// Publishes a rebuilt artifact: assigns the next generation, persists
  /// it (when a store is attached), records it in the in-memory history,
  /// drains the `applied` staged prefix, and resets novelty counters.
  /// Returns the new generation.
  std::uint64_t commit_swap(std::string bytes, std::uint64_t applied)
      RANM_EXCLUDES(mu_);

  /// Resolves a rollback target (0 = newest generation older than the one
  /// being served) to its persisted bytes. Throws std::runtime_error for
  /// unknown generations.
  [[nodiscard]] std::pair<std::uint64_t, std::string> checkout(
      std::uint64_t target) const RANM_EXCLUDES(mu_);

  /// Marks `generation` (previously returned by checkout) as the one
  /// being served; future rebuilds start from `bytes`.
  void commit_rollback(std::uint64_t generation, std::string bytes)
      RANM_EXCLUDES(mu_);

  /// Attaches the on-disk store. When the store already holds generations
  /// (daemon restart), adopts the newest one and returns {generation,
  /// bytes} for the caller to publish; otherwise persists the current
  /// generation and returns {0, ""}.
  std::pair<std::uint64_t, std::string> attach_store(
      std::unique_ptr<SnapshotStore> store) RANM_EXCLUDES(mu_);

  [[nodiscard]] AdaptTelemetry telemetry() const RANM_EXCLUDES(mu_);

 private:
  struct Generation {
    std::uint64_t id = 0;
    std::string bytes;
  };

  /// In-memory generations kept for rollback without a store attached.
  static constexpr std::size_t kHistoryDepth = 8;

  const std::size_t dimension_;
  const std::size_t max_staged_;

  mutable Mutex mu_;
  std::uint64_t generation_ RANM_GUARDED_BY(mu_) = 1;     // being served
  std::uint64_t last_assigned_ RANM_GUARDED_BY(mu_) = 1;  // monotonic
  std::uint64_t swaps_ RANM_GUARDED_BY(mu_) = 0;
  std::uint64_t rollbacks_ RANM_GUARDED_BY(mu_) = 0;
  std::vector<Generation> history_ RANM_GUARDED_BY(mu_);
  std::vector<float> staged_ RANM_GUARDED_BY(mu_);  // sample-major floats
  std::vector<std::uint64_t> shard_novel_ RANM_GUARDED_BY(mu_);
  std::unique_ptr<SnapshotStore> store_ RANM_GUARDED_BY(mu_);
};

}  // namespace ranm::serve
