#include "serve/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ranm::serve {
namespace {

// epoll_event.data.u64 keys below kFirstConnId are loop-internal wakeups
// and listeners; connection ids start above them.
constexpr std::uint64_t kKeyStop = 0;
constexpr std::uint64_t kKeyCompletion = 1;
constexpr std::uint64_t kKeyUnixListener = 2;
constexpr std::uint64_t kKeyTcpListener = 3;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("ranm::serve: ") + what + ": " +
                           std::strerror(errno));
}

int make_eventfd() {
  const int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd < 0) throw_errno("eventfd");
  return fd;
}

void drain_eventfd(int fd) noexcept {
  std::uint64_t count = 0;
  // Nonblocking; EAGAIN (nothing pending) is fine.
  (void)::read(fd, &count, sizeof count);
}

void signal_eventfd(int fd) noexcept {
  const std::uint64_t one = 1;
  // write(2) is async-signal-safe; a full counter (EAGAIN) still leaves
  // the fd readable, which is all a wakeup needs.
  (void)::write(fd, &one, sizeof one);
}

}  // namespace

/// Per-connection nonblocking state machine. All fields are owned by the
/// event loop thread; workers only ever see a connection's id.
struct Server::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  /// Inbound bytes; [parsed, in.size()) is unconsumed. Partial frames
  /// simply stay here until more bytes arrive — a slow writer costs
  /// memory bounded by one frame, never a blocked loop.
  std::string in;
  std::size_t parsed = 0;
  /// Outbound bytes not yet accepted by the socket; [out_off, out.size())
  /// is pending. Capacity persists across replies (write-side scratch).
  std::string out;
  std::size_t out_off = 0;
  /// One query is with a worker: parsing (and reading) pause until its
  /// completion, which keeps replies in order and inbound memory bounded.
  bool busy = false;
  /// Flush pending output, then close (protocol errors, peer EOF).
  bool closing = false;
  bool peer_eof = false;
  std::uint32_t epoll_events = 0;  // currently registered interest set

  [[nodiscard]] std::size_t unconsumed() const noexcept {
    return in.size() - parsed;
  }
  [[nodiscard]] bool out_pending() const noexcept {
    return out_off < out.size();
  }
};

std::string Server::BufferPool::acquire() {
  const MutexLock lock(mu_);
  if (spares_.empty()) return {};
  std::string buf = std::move(spares_.back());
  spares_.pop_back();
  return buf;
}

void Server::BufferPool::release(std::string&& buf) {
  buf.clear();
  const MutexLock lock(mu_);
  if (spares_.size() < 64) spares_.push_back(std::move(buf));
}

Server::Server(MonitorService& prototype, ServerConfig config)
    : config_(std::move(config)),
      queue_(config_.workers == 0 || config_.workers > 1
                 ? config_.queue_capacity
                 : 1) {
  if (config_.unix_path.empty() && !config_.tcp) {
    throw std::invalid_argument(
        "ranm::serve: Server needs at least one listener (unix_path or "
        "tcp)");
  }
  const std::size_t workers = resolve_thread_count(config_.workers);
  config_.workers = workers;
  replicas_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    replicas_.push_back(prototype.clone());
  }

  if (!config_.unix_path.empty()) {
    unix_listener_ = listeners_.size();
    listeners_.push_back(listen_unix(config_.unix_path));
  }
  if (config_.tcp) {
    tcp_listener_ = listeners_.size();
    listeners_.push_back(listen_tcp(config_.tcp_port));
    tcp_port_ = listeners_.back().port();
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  stop_event_fd_ = make_eventfd();
  completion_event_fd_ = make_eventfd();

  const auto add = [this](int fd, std::uint64_t key) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = key;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  };
  add(stop_event_fd_, kKeyStop);
  add(completion_event_fd_, kKeyCompletion);
  if (unix_listener_ != SIZE_MAX) {
    add(listeners_[unix_listener_].fd(), kKeyUnixListener);
  }
  if (tcp_listener_ != SIZE_MAX) {
    add(listeners_[tcp_listener_].fd(), kKeyTcpListener);
  }

  // workers == 1 executes inline in the event loop; no pool threads.
  if (workers > 1) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { worker_main(i); });
    }
  }
}

Server::~Server() {
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (swap_thread_.joinable()) swap_thread_.join();
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  if (completion_event_fd_ >= 0) ::close(completion_event_fd_);
  if (stop_event_fd_ >= 0) ::close(stop_event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  // Listeners close (and unlink the Unix socket file) via their dtors.
}

void Server::stop() noexcept { signal_eventfd(stop_event_fd_); }

void Server::run() { event_loop(); }

void Server::worker_main(std::size_t index) {
  MonitorService& service = *replicas_[index];
  for (;;) {
    std::optional<Request> request = queue_.pop();
    if (!request.has_value()) return;  // queue closed and drained
    Completion done;
    done.conn_id = request->conn_id;
    done.payload = buffers_.acquire();
    execute_request(service, request->type, request->payload, done.type,
                    done.payload);
    buffers_.release(std::move(request->payload));
    {
      const MutexLock lock(completions_mu_);
      completions_.push_back(std::move(done));
    }
    signal_eventfd(completion_event_fd_);
  }
}

void Server::execute_request(MonitorService& service, FrameType request,
                             std::string_view payload, FrameType& type,
                             std::string& reply) {
  // Decode scratch lives per-thread: each worker (and the inline loop)
  // re-enters with warm vectors instead of allocating per query.
  thread_local std::vector<Tensor> inputs;
  thread_local std::vector<std::uint8_t> warns;
  try {
    inputs = decode_query(payload);
    if (request == FrameType::kObserve) {
      // A service-side throw (frozen monitor, staging cap) becomes a
      // structured kError below — the worker and connection survive.
      encode_observe_reply_into(reply, service.observe_batch(inputs));
      type = FrameType::kObserveReply;
    } else {
      service.query_warns_into(inputs, warns);
      encode_verdicts_into(reply, warns);
      type = FrameType::kQueryReply;
    }
  } catch (const std::exception& e) {
    reply = encode_error(e.what());
    type = FrameType::kError;
  }
}

void Server::event_loop() {
  epoll_event events[64];
  for (;;) {
    const int n =
        ::epoll_wait(epoll_fd_, events, std::size(events), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[i].data.u64;
      switch (key) {
        case kKeyStop:
          drain_eventfd(stop_event_fd_);
          begin_drain();
          break;
        case kKeyCompletion:
          drain_eventfd(completion_event_fd_);
          handle_completions();
          break;
        case kKeyUnixListener:
          handle_accept(unix_listener_);
          break;
        case kKeyTcpListener:
          handle_accept(tcp_listener_);
          break;
        default:
          handle_conn_event(key, events[i].events);
          break;
      }
    }
    // Completions may have landed while other events were processed.
    handle_completions();
    if (drain_sweep_pending_) {
      // Safe here: no parse_frames is on the stack, so visiting (and
      // possibly destroying) any connection cannot alias a live frame.
      drain_sweep_pending_ = false;
      std::vector<std::uint64_t> ids;
      ids.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) ids.push_back(id);
      for (const std::uint64_t id : ids) {
        const auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        Conn& conn = *it->second;
        parse_frames(conn);
        update_epoll(conn);
        maybe_close(conn);
      }
    }
    if (drain_complete()) return;
  }
}

bool Server::drain_complete() const {
  return draining_ && conns_.empty() && in_flight_ == 0;
}

void Server::begin_drain() {
  if (draining_) return;
  draining_ = true;
  // Stop accepting; existing connections stop reading but every fully
  // buffered frame still gets parsed, executed, and flushed. The
  // per-connection sweep is deferred to the event-loop level because a
  // kShutdown frame reaches here from inside parse_frames.
  for (auto& listener : listeners_) listener.close();
  drain_sweep_pending_ = true;
}

void Server::handle_accept(std::size_t listener_index) {
  if (listener_index == SIZE_MAX || draining_) return;
  Listener& listener = listeners_[listener_index];
  if (!listener.valid()) return;
  for (;;) {
    const int fd = ::accept4(listener.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: accepted everything pending. Other errors (ECONNABORTED,
      // EMFILE, ...) drop this accept but keep the server up.
      return;
    }
    if (listener_index == tcp_listener_) set_tcp_nodelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conn->epoll_events = EPOLLIN;
    connections_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::handle_conn_event(std::uint64_t conn_id,
                               std::uint32_t events) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // closed earlier this wakeup
  Conn& conn = *it->second;

  // A hangup while a query is in flight: the peer is gone in both
  // directions, so the reply has nowhere to go — destroying now (the
  // completion is dropped by id) also stops EPOLLHUP, which cannot be
  // masked, from re-waking the loop until the worker finishes.
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && conn.busy) {
    destroy_conn(conn_id);
    return;
  }

  if ((events & EPOLLOUT) != 0 && conn.out_pending()) {
    if (!flush_out(conn)) {
      destroy_conn(conn_id);
      return;
    }
  }

  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0 && !conn.busy &&
      !conn.closing && !conn.peer_eof && !draining_) {
    char buf[65536];
    for (;;) {
      const ssize_t rc = ::recv(conn.fd, buf, sizeof buf, 0);
      if (rc > 0) {
        conn.in.append(buf, std::size_t(rc));
        // While a request is in flight we stop reading entirely, so the
        // unconsumed span is bounded by the frame cap plus one recv.
        continue;
      }
      if (rc == 0) {
        conn.peer_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      destroy_conn(conn_id);  // ECONNRESET and friends
      return;
    }
    parse_frames(conn);
  }

  update_epoll(conn);
  maybe_close(conn);
}

void Server::parse_frames(Conn& conn) {
  while (!conn.busy && !conn.closing) {
    if (conn.unconsumed() < kFrameHeaderBytes) break;
    char header[kFrameHeaderBytes];
    std::memcpy(header, conn.in.data() + conn.parsed, kFrameHeaderBytes);
    FrameHeader parsed{};
    try {
      parsed = decode_frame_header(header);
    } catch (const std::exception& e) {
      // The stream may be desynced — answer, flush, close.
      queue_reply(conn, FrameType::kError, encode_error(e.what()));
      conn.closing = true;
      break;
    }
    if (conn.unconsumed() <
        kFrameHeaderBytes + std::size_t(parsed.payload_len)) {
      break;  // partial frame: wait for more bytes
    }
    const std::string_view payload(
        conn.in.data() + conn.parsed + kFrameHeaderBytes,
        std::size_t(parsed.payload_len));
    conn.parsed += kFrameHeaderBytes + std::size_t(parsed.payload_len);

    switch (parsed.type) {
      case FrameType::kQuery:
      case FrameType::kObserve:
        dispatch_request(conn, parsed.type, payload);
        break;
      case FrameType::kSwap:
        handle_swap(conn);
        break;
      case FrameType::kRollback:
        handle_rollback(conn, payload);
        break;
      case FrameType::kStats:
        queue_reply(conn, FrameType::kStatsReply,
                    encode_stats(build_stats()));
        break;
      case FrameType::kShutdown:
        queue_reply(conn, FrameType::kShutdownAck, {});
        begin_drain();
        break;
      default:
        // Header-valid but not a request (a reply type, kOverloaded, ...)
        queue_reply(
            conn, FrameType::kError,
            encode_error("unexpected frame type from client"));
        break;
    }
  }
  // Reclaim consumed bytes. Full consumption is the steady state and
  // keeps the buffer's capacity as read scratch; the partial-frame erase
  // only triggers once the dead prefix outweighs the memmove.
  if (conn.parsed == conn.in.size()) {
    conn.in.clear();
    conn.parsed = 0;
  } else if (conn.parsed > (1U << 20)) {
    conn.in.erase(0, conn.parsed);
    conn.parsed = 0;
  }
}

void Server::dispatch_request(Conn& conn, FrameType request_type,
                              std::string_view payload) {
  if (replicas_.size() == 1) {
    // Inline mode: execute on the loop thread. One replica would
    // serialise every query anyway; skipping the handoff saves two
    // context switches per query.
    thread_local std::string reply;
    FrameType type = FrameType::kError;
    execute_request(*replicas_[0], request_type, payload, type, reply);
    queue_reply(conn, type, reply);
    return;
  }
  Request request;
  request.conn_id = conn.id;
  request.type = request_type;
  request.payload = buffers_.acquire();
  request.payload.assign(payload.data(), payload.size());
  if (!queue_.try_push(std::move(request))) {
    ++overloaded_;
    queue_reply(conn, FrameType::kOverloaded,
                encode_error("server overloaded: request queue full (" +
                             std::to_string(queue_.capacity()) +
                             " waiting); retry later"));
    return;
  }
  conn.busy = true;
  ++in_flight_;
}

void Server::handle_swap(Conn& conn) {
  if (swap_in_flight_) {
    queue_reply(conn, FrameType::kError,
                encode_error("swap already in progress; retry after it "
                             "completes"));
    return;
  }
  // The previous swap's thread (flag already cleared via its completion)
  // may still be a hair from returning; reap it before reusing the slot.
  if (swap_thread_.joinable()) swap_thread_.join();
  conn.busy = true;  // the reply comes back as a completion
  ++in_flight_;
  swap_in_flight_ = true;
  const std::uint64_t conn_id = conn.id;
  swap_thread_ = std::thread([this, conn_id] { run_swap(conn_id); });
}

void Server::run_swap(std::uint64_t conn_id) {
  Completion done;
  done.conn_id = conn_id;
  done.swap_done = true;
  try {
    Timer timer;
    // Rebuild off the shared staging pool — no replica scratch, so every
    // worker (and the loop, in inline mode) keeps answering queries.
    std::uint64_t applied = 0;
    std::string bytes = replicas_[0]->rebuild_refreshed(applied);
    // Publish everywhere: each replica loads its own monitor object from
    // the same bytes (replicas never share mutable monitor state), then
    // swaps it in atomically. In-flight queries finish on the snapshot
    // they started with.
    for (auto& replica : replicas_) replica->adopt(bytes);
    const auto duration_us = std::uint64_t(timer.millis() * 1000.0);
    const SwapReply reply =
        replicas_[0]->commit_swap(std::move(bytes), applied, duration_us);
    done.type = FrameType::kSwapReply;
    done.payload = encode_swap_reply(reply);
  } catch (const std::exception& e) {
    done.type = FrameType::kError;
    done.payload = encode_error(e.what());
  }
  {
    const MutexLock lock(completions_mu_);
    completions_.push_back(std::move(done));
  }
  signal_eventfd(completion_event_fd_);
}

void Server::handle_rollback(Conn& conn, std::string_view payload) {
  if (swap_in_flight_) {
    queue_reply(conn, FrameType::kError,
                encode_error("rollback rejected: a swap is in progress"));
    return;
  }
  try {
    const std::uint64_t target = decode_rollback(payload);
    auto [generation, bytes] = replicas_[0]->checkout_generation(target);
    for (auto& replica : replicas_) replica->adopt(bytes);
    const RollbackReply reply =
        replicas_[0]->commit_rollback(generation, std::move(bytes));
    queue_reply(conn, FrameType::kRollbackReply,
                encode_rollback_reply(reply));
  } catch (const std::exception& e) {
    queue_reply(conn, FrameType::kError, encode_error(e.what()));
  }
}

void Server::handle_completions() {
  {
    const MutexLock lock(completions_mu_);
    completion_scratch_.swap(completions_);
  }
  for (Completion& done : completion_scratch_) {
    --in_flight_;
    if (done.swap_done) {
      // Clear before the conns_ lookup: a connection that died mid-swap
      // must not leave the swap slot occupied forever.
      swap_in_flight_ = false;
      if (swap_thread_.joinable()) swap_thread_.join();
    }
    const auto it = conns_.find(done.conn_id);
    if (it != conns_.end()) {
      Conn& conn = *it->second;
      conn.busy = false;
      queue_reply(conn, done.type, done.payload);
      // The reply unblocked parsing: the next buffered frame may
      // dispatch now (also how drains finish multi-frame backlogs).
      parse_frames(conn);
      update_epoll(conn);
      maybe_close(conn);
    }
    // else: the connection died while its query ran; drop the reply.
    buffers_.release(std::move(done.payload));
  }
  // Keep the vector (capacity and all) as the next swap target.
  completion_scratch_.clear();
}

ServiceStats Server::build_stats() {
  // Identity and shard table come from replica 0; counters are the
  // aggregate across all replicas plus the per-worker breakdown.
  ServiceStats stats = replicas_[0]->stats();
  stats.queries = 0;
  stats.samples = 0;
  stats.warnings = 0;
  stats.workers.clear();
  stats.workers.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    WorkerCountersWire w;
    w.queries = replica->queries();
    w.samples = replica->samples();
    w.warnings = replica->warnings();
    stats.queries += w.queries;
    stats.samples += w.samples;
    stats.warnings += w.warnings;
    stats.workers.push_back(w);
  }
  stats.in_flight = in_flight_;
  stats.queue_depth = replicas_.size() > 1 ? queue_.size() : 0;
  stats.queue_capacity = replicas_.size() > 1 ? queue_.capacity() : 0;
  stats.overloaded = overloaded_;
  // Rolling warning-rate: sum every replica's recent window (replica 0's
  // alone would miss the pooled workers' traffic).
  stats.rolling_samples = 0;
  stats.rolling_warnings = 0;
  for (const auto& replica : replicas_) {
    replica->rolling_counters(stats.rolling_samples,
                              stats.rolling_warnings);
  }
  return stats;
}

void Server::queue_reply(Conn& conn, FrameType type,
                         std::string_view payload) {
  char header[kFrameHeaderBytes];
  encode_frame_header(header, type, payload.size());
  conn.out.append(header, kFrameHeaderBytes);
  conn.out.append(payload.data(), payload.size());
  if (!flush_out(conn)) {
    // Peer gone mid-reply. Destroying here would dangle the parse loop's
    // reference, so just mark it; maybe_close reaps at a safe point.
    conn.closing = true;
    conn.out.clear();
    conn.out_off = 0;
  }
}

bool Server::flush_out(Conn& conn) {
  while (conn.out_pending()) {
    const ssize_t rc =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // EPIPE/ECONNRESET: peer gone
    }
    conn.out_off += std::size_t(rc);
  }
  conn.out.clear();  // capacity persists: write-side scratch
  conn.out_off = 0;
  return true;
}

void Server::update_epoll(Conn& conn) {
  std::uint32_t want = 0;
  if (!conn.busy && !conn.closing && !conn.peer_eof && !draining_) {
    want |= EPOLLIN;
  }
  if (conn.out_pending()) want |= EPOLLOUT;
  if (want == conn.epoll_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.epoll_events = want;
  }
}

void Server::maybe_close(Conn& conn) {
  if (conn.busy || conn.out_pending()) return;
  // During a drain every complete frame has been parsed by the time this
  // runs, and reads have stopped, so a leftover partial frame can never
  // finish — close unconditionally once quiescent.
  if (conn.closing || conn.peer_eof || draining_) {
    destroy_conn(conn.id);
  }
}

void Server::destroy_conn(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
}

}  // namespace ranm::serve
