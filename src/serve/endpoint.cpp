#include "serve/endpoint.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ranm::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("ranm::serve: " + what + ": " +
                           std::strerror(errno));
}

/// True iff a daemon is currently accepting on `addr` — a stale socket
/// file from a crashed run refuses the probe connection instead.
bool unix_socket_is_live(const sockaddr_un& addr) {
  const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (probe < 0) return false;
  const bool live =
      ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) == 0;
  ::close(probe);
  return live;
}

sockaddr_un make_unix_addr(const std::string& path, const char* who) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument(std::string(who) +
                                ": socket path empty or longer than the "
                                "sockaddr_un limit");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      unix_path_(std::move(other.unix_path_)),
      bound_dev_(other.bound_dev_),
      bound_ino_(other.bound_ino_) {
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    unix_path_ = std::move(other.unix_path_);
    other.unix_path_.clear();
    bound_dev_ = other.bound_dev_;
    bound_ino_ = other.bound_ino_;
  }
  return *this;
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Unlink only the socket file this listener bound (matched by inode):
  // if another process replaced it meanwhile, leave theirs alone.
  if (!unix_path_.empty()) {
    struct stat st{};
    if (::stat(unix_path_.c_str(), &st) == 0 && st.st_dev == bound_dev_ &&
        st.st_ino == bound_ino_) {
      ::unlink(unix_path_.c_str());
    }
    unix_path_.clear();
  }
}

Listener listen_unix(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path, "listen_unix");
  // A stale socket file from a crashed run is replaced; one a live
  // daemon is accepting on must not be silently stolen out from under it.
  if (unix_socket_is_live(addr)) {
    throw std::runtime_error("ranm::serve: " + path +
                             " is already being served");
  }
  Listener listener;
  listener.fd_ =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listener.fd_ < 0) throw_errno("socket(unix)");
  ::unlink(path.c_str());
  if (::bind(listener.fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind(" + path + ")");
  }
  listener.unix_path_ = path;
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    listener.bound_dev_ = st.st_dev;
    listener.bound_ino_ = st.st_ino;
  }
  if (::listen(listener.fd_, SOMAXCONN) < 0) {
    throw_errno("listen(" + path + ")");
  }
  return listener;
}

Listener listen_tcp(std::uint16_t port) {
  Listener listener;
  listener.fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listener.fd_ < 0) throw_errno("socket(tcp)");
  const int one = 1;
  ::setsockopt(listener.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listener.fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind(tcp port " + std::to_string(port) + ")");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listener.fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) < 0) {
    throw_errno("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  if (::listen(listener.fd_, SOMAXCONN) < 0) throw_errno("listen(tcp)");
  return listener;
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path, "connect_unix");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(unix)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot connect to " + path);
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                               &results);
  if (rc != 0) {
    throw std::runtime_error("ranm::serve: cannot resolve " + host + ": " +
                             ::gai_strerror(rc));
  }
  int fd = -1;
  int saved_errno = ECONNREFUSED;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    errno = saved_errno;
    throw_errno("cannot connect to " + host + ":" + port_str);
  }
  set_tcp_nodelay(fd);
  return fd;
}

HostPort parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    throw std::invalid_argument("expected HOST:PORT, got '" + spec + "'");
  }
  HostPort hp;
  hp.host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  std::size_t used = 0;
  unsigned long port = 0;
  try {
    port = std::stoul(port_str, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != port_str.size() || port == 0 || port > 65535) {
    throw std::invalid_argument("invalid port in '" + spec +
                                "' (must be 1..65535)");
  }
  hp.port = static_cast<std::uint16_t>(port);
  return hp;
}

void set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    throw_errno("fcntl(F_SETFL)");
  }
}

void set_tcp_nodelay(int fd) noexcept {
  const int one = 1;
  // Fails harmlessly with ENOTSUP/EOPNOTSUPP on Unix-domain sockets.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace ranm::serve
