// Client side of the serving protocol.
//
// Connects to a running daemon — Unix-domain socket or TCP — and exposes
// the same calls as MonitorService, marshalled through the frame
// protocol. Used by `ranm_cli query`, bench_serving's wire-path sweeps,
// and the end-to-end tests (which run the server on a thread of the same
// process — no subprocess needed).
//
// The encode scratch and the reply frame are instance members reused
// across calls, so a steady-state request loop performs no per-query
// allocation on the client either. One request is in flight at a time
// (the server enforces the same), so a client instance is used by one
// thread; concurrent load uses one client per thread.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace ranm::serve {

/// The server's bounded request queue was full and the query was rejected
/// with kOverloaded. Distinct from std::runtime_error so callers can back
/// off and retry: the connection is still usable.
class ServerOverloadedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ServeClient {
 public:
  /// Connects to a Unix-domain socket daemon; throws std::runtime_error
  /// if no daemon is listening on `socket_path`.
  explicit ServeClient(const std::string& socket_path);

  /// Connects over TCP (TCP_NODELAY set); throws std::runtime_error when
  /// the host does not resolve or the daemon is not accepting.
  ServeClient(const std::string& host, std::uint16_t port);

  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Streams one minibatch through the daemon into `warns` (one 0/1 byte
  /// per input; the caller-owned vector keeps its capacity). Throws
  /// ServerOverloadedError on a kOverloaded reply, std::runtime_error on
  /// transport failure or an error frame (message included).
  void query_warns_into(std::span<const Tensor> inputs,
                        std::vector<std::uint8_t>& warns);

  /// Convenience wrapper allocating the verdict vector per call.
  [[nodiscard]] std::vector<std::uint8_t> query_warns(
      std::span<const Tensor> inputs);

  /// Stages one minibatch on the daemon for its next rebuild; the reply
  /// carries accepted/staged/novelty counters. Throws std::runtime_error
  /// with the server's message for frozen monitors or a full staging
  /// pool (the connection stays usable).
  [[nodiscard]] ObserveReply observe(std::span<const Tensor> inputs);

  /// Asks the daemon to rebuild from its staged samples and atomically
  /// publish the refreshed monitor across every worker replica.
  [[nodiscard]] SwapReply swap();

  /// Restores a persisted generation (0 = the previous one).
  [[nodiscard]] RollbackReply rollback(std::uint64_t generation = 0);

  /// Fetches the daemon's per-worker + aggregate counters, serving-loop
  /// telemetry, and per-shard statistics.
  [[nodiscard]] ServiceStats stats();

  /// Asks the daemon to stop gracefully; returns once it acknowledged.
  void shutdown_server();

 private:
  /// One request/response exchange; unwraps kError into std::runtime_error
  /// and kOverloaded into ServerOverloadedError, enforces the expected
  /// reply type, and leaves the reply in the reused reply_ frame.
  [[nodiscard]] const Frame& round_trip(FrameType request,
                                        std::string_view payload,
                                        FrameType expected_reply);

  int fd_ = -1;
  Frame reply_;          // reply payload buffer, reused across calls
  std::string scratch_;  // request encode buffer, reused across calls
};

}  // namespace ranm::serve
