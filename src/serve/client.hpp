// Client side of the serving protocol.
//
// Connects to a running daemon's Unix-domain socket and exposes the same
// calls as MonitorService, marshalled through the frame protocol. Used by
// `ranm_cli query`, bench_serving's wire-path sweep, and the end-to-end
// tests (which run the server on a thread of the same process — no
// subprocess needed).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace ranm::serve {

class ServeClient {
 public:
  /// Connects immediately; throws std::runtime_error if the daemon is not
  /// listening on `socket_path`.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Streams one minibatch through the daemon: returns one warn byte
  /// (0/1) per input. Throws std::runtime_error on transport failure or
  /// when the server answers with an error frame (message included).
  [[nodiscard]] std::vector<std::uint8_t> query_warns(
      std::span<const Tensor> inputs);

  /// Fetches the daemon's lifetime counters and per-shard statistics.
  [[nodiscard]] ServiceStats stats();

  /// Asks the daemon to stop gracefully; returns once it acknowledged.
  void shutdown_server();

 private:
  /// One request/response exchange; unwraps kError replies into thrown
  /// std::runtime_error and enforces the expected reply type.
  [[nodiscard]] Frame round_trip(FrameType request, std::string_view payload,
                                 FrameType expected_reply);

  int fd_ = -1;
};

}  // namespace ranm::serve
