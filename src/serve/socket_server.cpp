#include "serve/socket_server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/fd_frame.hpp"

namespace ranm::serve {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("SocketServer: ") + what + ": " +
                           std::strerror(errno));
}

void close_quiet(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// True iff a daemon is currently accepting on `addr` — a stale socket
/// file from a crashed run refuses the probe connection instead.
bool socket_is_live(const sockaddr_un& addr) {
  const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (probe < 0) return false;
  const bool live = ::connect(probe,
                              reinterpret_cast<const sockaddr*>(&addr),
                              sizeof addr) == 0;
  ::close(probe);
  return live;
}

}  // namespace

SocketServer::SocketServer(MonitorService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {
  sockaddr_un addr{};
  if (path_.empty() || path_.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("SocketServer: socket path empty or longer "
                                "than the sockaddr_un limit");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  // A stale socket file from a crashed run is replaced; one a live
  // daemon is accepting on must not be silently stolen out from under it.
  if (socket_is_live(addr)) {
    throw std::runtime_error("SocketServer: " + path_ +
                             " is already being served");
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    const int saved = errno;
    close_quiet(listen_fd_);
    errno = saved;
    throw_errno("bind");
  }
  // Remember which file we created so the destructor never deletes a
  // socket some later process bound at the same path.
  struct stat st{};
  if (::stat(path_.c_str(), &st) == 0) {
    bound_dev_ = st.st_dev;
    bound_ino_ = st.st_ino;
  }
  if (::listen(listen_fd_, 8) < 0) {
    const int saved = errno;
    close_quiet(listen_fd_);
    ::unlink(path_.c_str());
    errno = saved;
    throw_errno("listen");
  }
  if (::pipe2(stop_pipe_, O_CLOEXEC) < 0) {
    const int saved = errno;
    close_quiet(listen_fd_);
    ::unlink(path_.c_str());
    errno = saved;
    throw_errno("pipe2");
  }
}

SocketServer::~SocketServer() {
  close_quiet(listen_fd_);
  close_quiet(stop_pipe_[0]);
  close_quiet(stop_pipe_[1]);
  // Unlink only the socket file this server bound (matched by inode):
  // if another process replaced it meanwhile, leave theirs alone.
  struct stat st{};
  if (::stat(path_.c_str(), &st) == 0 && st.st_dev == bound_dev_ &&
      st.st_ino == bound_ino_) {
    ::unlink(path_.c_str());
  }
}

void SocketServer::stop() noexcept {
  // One byte on the self-pipe; write() is async-signal-safe, so signal
  // handlers may call this directly. The result is deliberately ignored:
  // a full pipe already means a stop is pending.
  const char byte = 1;
  [[maybe_unused]] const ssize_t rc =
      ::write(stop_pipe_[1], &byte, 1);
}

int SocketServer::accept_connection() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if ((fds[1].revents & POLLIN) != 0) return -1;
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        throw_errno("accept");
      }
      return conn;
    }
  }
}

bool SocketServer::serve_connection(int fd) {
  for (;;) {
    FdFrameResult in;
    try {
      in = read_frame_fd(fd, stop_pipe_[0]);
    } catch (const std::exception& e) {
      // Malformed header or truncated frame: the stream may be desynced,
      // so report once and drop the connection, but keep serving others.
      try {
        write_frame_fd(fd, FrameType::kError, encode_error(e.what()));
      } catch (const std::exception&) {
      }
      return true;
    }
    if (in.stopped) return false;
    if (in.eof) return true;

    try {
      switch (in.frame.type) {
        case FrameType::kQuery: {
          // Payload-level failures (corrupt query, shape mismatch) leave
          // the stream synced — the payload was fully consumed — so the
          // connection survives a kError reply.
          const std::vector<Tensor> inputs = decode_query(in.frame.payload);
          const std::vector<std::uint8_t> warns =
              service_.query_warns(inputs);
          write_frame_fd(fd, FrameType::kQueryReply,
                         encode_verdicts(warns));
          break;
        }
        case FrameType::kStats:
          write_frame_fd(fd, FrameType::kStatsReply,
                         encode_stats(service_.stats()));
          break;
        case FrameType::kShutdown:
          write_frame_fd(fd, FrameType::kShutdownAck, "");
          return false;
        default:
          write_frame_fd(fd, FrameType::kError,
                         encode_error("unexpected frame type"));
          break;
      }
    } catch (const std::runtime_error& e) {
      // decode_* failures: answer and keep the connection.
      try {
        write_frame_fd(fd, FrameType::kError, encode_error(e.what()));
      } catch (const std::exception&) {
        return true;  // peer gone mid-reply
      }
    } catch (const std::invalid_argument& e) {
      try {
        write_frame_fd(fd, FrameType::kError, encode_error(e.what()));
      } catch (const std::exception&) {
        return true;
      }
    }
  }
}

void SocketServer::run() {
  for (;;) {
    const int conn = accept_connection();
    if (conn < 0) break;
    ++connections_;
    const bool keep_going = serve_connection(conn);
    ::close(conn);
    if (!keep_going) break;
  }
}

}  // namespace ranm::serve
