// In-process core of the serving layer: network + monitor loaded once,
// minibatch membership answered for the lifetime of the process.
//
// The batch-oriented `ranm_cli eval` re-loads the network and monitor
// artifacts on every invocation; at deployment time the monitor instead
// rides along with a live DNN, so the serving layer keeps both resident
// and answers each incoming minibatch through the batch-first pipeline:
// Network::forward_batch (one feature-extraction pass) feeding
// Monitor::contains_batch (one membership query per column). A
// ShardedMonitor is the intended unit of deployment — `threads` fans its
// per-shard row views out across cores — but any flat monitor serves too.
//
// MonitorService is the transport-independent API: tests and
// bench_serving call it directly (no subprocess, no socket), while the
// epoll Server exposes the same calls over the frame protocol.
// Like every Monitor, a service instance is not thread-safe for queries
// (forward_batch and warn_batch share per-instance scratch): one thread
// queries at a time. Concurrency comes from replication instead — the
// server clone()s one replica per worker, which is sound because monitors
// are read-only after load. The lifetime counters are atomic, so stats()
// and the counter accessors may race with a query from another thread.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/monitor_builder.hpp"
#include "nn/network.hpp"
#include "serve/protocol.hpp"

namespace ranm::serve {

/// Long-lived network + monitor pair answering minibatch queries.
class MonitorService {
 public:
  /// Takes ownership of both artifacts. `layer_k` is the monitored layer
  /// (1-based, as everywhere); the monitor's dimension must equal the
  /// layer's feature dimension. `threads` configures shard-level
  /// parallelism on a ShardedMonitor (0 = hardware concurrency) and is
  /// ignored for flat monitors.
  MonitorService(Network net, std::unique_ptr<Monitor> monitor,
                 std::size_t layer_k, std::size_t threads = 1);

  /// Loads both artifacts from disk once — the whole point of the serving
  /// layer over per-invocation CLI loads.
  [[nodiscard]] static MonitorService from_files(
      const std::string& net_path, const std::string& monitor_path,
      std::size_t layer_k, std::size_t threads = 1);

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  /// Deep-copies the service by round-tripping both artifacts through
  /// their serialisers — bit-identical network and monitor, fresh
  /// counters, fresh scratch. This is how the server builds per-worker
  /// replicas. Non-const only because save_network is. Throws
  /// std::invalid_argument for monitors without a serialiser.
  [[nodiscard]] std::unique_ptr<MonitorService> clone();

  /// Answers one minibatch into `warns` (resized to inputs.size()):
  /// warns[i] = 1 iff the monitor warns on inputs[i] (membership negated).
  /// The caller-owned vector keeps its capacity across calls, so a
  /// steady-state serving loop pays no per-query allocation. Throws
  /// std::invalid_argument on a shape mismatch or an oversized batch; the
  /// service stays usable after a failed query.
  void query_warns_into(std::span<const Tensor> inputs,
                        std::vector<std::uint8_t>& warns);

  /// Convenience wrapper allocating the verdict vector per call.
  [[nodiscard]] std::vector<std::uint8_t> query_warns(
      std::span<const Tensor> inputs);

  /// Lifetime counters plus the per-shard table `ranm_cli info` shows.
  /// The counter fields are relaxed snapshots — safe to call while
  /// another thread queries.
  [[nodiscard]] ServiceStats stats() const;

  // Relaxed snapshots of the lifetime counters (the server aggregates
  // these across worker replicas for kStats).
  [[nodiscard]] std::uint64_t queries() const noexcept {
    return queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t warnings() const noexcept {
    return warnings_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t dimension() const noexcept {
    return monitor_->dimension();
  }
  [[nodiscard]] std::size_t layer_k() const noexcept { return k_; }
  [[nodiscard]] const Monitor& monitor() const noexcept { return *monitor_; }

 private:
  Network net_;
  std::unique_ptr<Monitor> monitor_;
  std::size_t k_;
  std::size_t threads_;
  MonitorBuilder builder_;  // binds net_ + k_; lives exactly as long
  // Lifetime counters surfaced in stats frames. Atomic (relaxed): workers
  // bump their replica's counters while the event loop aggregates them
  // for a concurrent kStats.
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> warnings_{0};
  // Reused per-query verdict scratch: the serving hot path must not pay
  // steady-state allocator traffic for the bool row.
  std::unique_ptr<bool[]> scratch_;
  std::size_t scratch_capacity_ = 0;
};

}  // namespace ranm::serve
