// In-process core of the serving layer: network + monitor loaded once,
// minibatch membership answered for the lifetime of the process.
//
// The batch-oriented `ranm_cli eval` re-loads the network and monitor
// artifacts on every invocation; at deployment time the monitor instead
// rides along with a live DNN, so the serving layer keeps both resident
// and answers each incoming minibatch through the batch-first pipeline:
// Network::forward_batch (one feature-extraction pass) feeding
// Monitor::contains_batch (one membership query per column). A
// ShardedMonitor is the intended unit of deployment — `threads` fans its
// per-shard row views out across cores — but any flat monitor serves too.
//
// MonitorService is the transport-independent API: tests and
// bench_serving call it directly (no subprocess, no socket), while the
// epoll Server exposes the same calls over the frame protocol.
// Like every Monitor, a service instance is not thread-safe for queries
// (forward_batch and warn_batch share per-instance scratch): one thread
// queries at a time. Concurrency comes from replication instead — the
// server clone()s one replica per worker, which is sound because monitors
// are read-only after load. The lifetime counters are atomic, so stats()
// and the counter accessors may race with a query from another thread.
//
// Online adaptation (monitor lifecycle). The served monitor is an
// RCU-style snapshot: queries copy a shared_ptr under a tiny mutex, then
// run lock-free against that copy, so a concurrent adopt() publishes a
// refreshed monitor atomically — every query is answered entirely by the
// old or the new snapshot, never a blend. observe_batch() stages live
// batches (as layer-k features) into the AdaptState all replicas share;
// rebuild_refreshed() folds the staged pool into a fresh monitor loaded
// from the pristine current-generation bytes — touching no per-replica
// scratch, so it runs on a background thread while queries continue —
// and adopt() + commit_swap() publish it everywhere as one generation.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/monitor.hpp"
#include "core/monitor_builder.hpp"
#include "nn/network.hpp"
#include "serve/adapt.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot_store.hpp"
#include "util/annotations.hpp"

namespace ranm::serve {

/// Long-lived network + monitor pair answering minibatch queries.
class MonitorService {
 public:
  /// Queries contributing to the rolling warning-rate window in kStats.
  static constexpr std::size_t kRollingWindow = 64;

  /// Takes ownership of both artifacts. `layer_k` is the monitored layer
  /// (1-based, as everywhere); the monitor's dimension must equal the
  /// layer's feature dimension. `threads` configures shard-level
  /// parallelism on a ShardedMonitor (0 = hardware concurrency) and is
  /// ignored for flat monitors.
  MonitorService(Network net, std::unique_ptr<Monitor> monitor,
                 std::size_t layer_k, std::size_t threads = 1);

  /// Loads both artifacts from disk once — the whole point of the serving
  /// layer over per-invocation CLI loads.
  [[nodiscard]] static MonitorService from_files(
      const std::string& net_path, const std::string& monitor_path,
      std::size_t layer_k, std::size_t threads = 1);

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  /// Deep-copies the service by round-tripping both artifacts through
  /// their serialisers — bit-identical network and monitor, fresh
  /// counters, fresh scratch. This is how the server builds per-worker
  /// replicas; they share this service's AdaptState, so a swap staged
  /// through any replica publishes one generation for all of them.
  /// Non-const only because save_network is. Throws
  /// std::invalid_argument for monitors without a serialiser.
  [[nodiscard]] std::unique_ptr<MonitorService> clone();

  /// Answers one minibatch into `warns` (resized to inputs.size()):
  /// warns[i] = 1 iff the monitor warns on inputs[i] (membership negated).
  /// The caller-owned vector keeps its capacity across calls, so a
  /// steady-state serving loop pays no per-query allocation. Throws
  /// std::invalid_argument on a shape mismatch or an oversized batch; the
  /// service stays usable after a failed query.
  void query_warns_into(std::span<const Tensor> inputs,
                        std::vector<std::uint8_t>& warns);

  /// Convenience wrapper allocating the verdict vector per call.
  [[nodiscard]] std::vector<std::uint8_t> query_warns(
      std::span<const Tensor> inputs);

  // ---- monitor lifecycle --------------------------------------------------

  /// True when this monitor family supports the observe/swap/rollback
  /// path (it has a serialiser and is not compiled/frozen).
  [[nodiscard]] bool adaptive() const noexcept;

  /// Stages one live minibatch for the next rebuild: extracts layer-k
  /// features, counts how many samples the *current* snapshot warns on
  /// (drift signal, per shard too for sharded monitors), and appends the
  /// features to the shared staging pool. Serialised with queries on the
  /// same replica (same scratch); safe against concurrent staging through
  /// other replicas. Throws std::invalid_argument for frozen/compiled
  /// monitors and std::runtime_error past the staging cap.
  [[nodiscard]] ObserveReply observe_batch(std::span<const Tensor> inputs);

  /// Builds the refreshed artifact: loads a fresh monitor from the
  /// pristine current-generation bytes, folds the staged features into
  /// it, and returns its serialised bytes ( `applied` = staged samples
  /// consumed). Touches no per-replica scratch — safe on a background
  /// thread while this and other replicas keep answering queries.
  [[nodiscard]] std::string rebuild_refreshed(std::uint64_t& applied);

  /// Atomically publishes a monitor loaded from `bytes` as this replica's
  /// snapshot. In-flight queries keep the snapshot they started with.
  void adopt(const std::string& bytes);

  /// Records a rebuilt artifact as the next generation in the shared
  /// AdaptState (persisting it when a store is attached) and returns the
  /// swap reply. Call after every replica adopt()ed `bytes`.
  [[nodiscard]] SwapReply commit_swap(std::string bytes,
                                      std::uint64_t applied,
                                      std::uint64_t duration_us);

  /// Resolves a rollback target (0 = previous) to {generation, bytes}.
  [[nodiscard]] std::pair<std::uint64_t, std::string> checkout_generation(
      std::uint64_t target) const;

  /// Records a rollback in the shared AdaptState. Call after every
  /// replica adopt()ed the checked-out bytes.
  [[nodiscard]] RollbackReply commit_rollback(std::uint64_t generation,
                                              std::string bytes);

  /// In-process swap: rebuild, adopt, commit — what the server spreads
  /// across its background thread and replicas, in one call.
  [[nodiscard]] SwapReply swap();

  /// In-process rollback to `target` (0 = previous generation).
  [[nodiscard]] RollbackReply rollback(std::uint64_t target = 0);

  /// Attaches the on-disk generation store. On a fresh store the current
  /// generation is persisted; on a store carrying history (daemon
  /// restart) the newest persisted generation is adopted and returned
  /// (0 = nothing resumed). Call before clone()ing replicas.
  std::uint64_t set_snapshot_store(std::unique_ptr<SnapshotStore> store);

  /// Lifetime counters plus the per-shard table `ranm_cli info` shows.
  /// The counter fields are relaxed snapshots — safe to call while
  /// another thread queries.
  [[nodiscard]] ServiceStats stats() const;

  // Relaxed snapshots of the lifetime counters (the server aggregates
  // these across worker replicas for kStats).
  [[nodiscard]] std::uint64_t queries() const noexcept {
    return queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t warnings() const noexcept {
    return warnings_.load(std::memory_order_relaxed);
  }
  /// Sums this replica's rolling window (last kRollingWindow queries)
  /// into the caller's accumulators.
  void rolling_counters(std::uint64_t& samples,
                        std::uint64_t& warnings) const
      RANM_EXCLUDES(rolling_mu_);

  /// Published generation (0: adaptation disabled for this family).
  [[nodiscard]] std::uint64_t generation() const;
  /// Samples staged for the next swap.
  [[nodiscard]] std::uint64_t staged_samples() const;

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }
  [[nodiscard]] std::size_t layer_k() const noexcept { return k_; }
  /// describe() of the current snapshot.
  [[nodiscard]] std::string monitor_description() const;

 private:
  /// The current snapshot: copied under the lock, used lock-free.
  [[nodiscard]] std::shared_ptr<Monitor> snapshot() const
      RANM_EXCLUDES(snapshot_mu_);
  /// Applies the host thread count to a freshly loaded monitor.
  void apply_threads(Monitor& monitor) const;
  void record_rolling(std::uint64_t samples, std::uint64_t warnings)
      RANM_EXCLUDES(rolling_mu_);

  Network net_;
  mutable Mutex snapshot_mu_;
  std::shared_ptr<Monitor> monitor_ RANM_GUARDED_BY(snapshot_mu_);
  std::size_t k_;
  std::size_t threads_;
  std::size_t dim_;         // fixed across swaps; adopt() re-checks it
  MonitorBuilder builder_;  // binds net_ + k_; lives exactly as long
  // Shared across clone()d replicas; null when the family has no
  // serialiser (adaptation disabled).
  std::shared_ptr<AdaptState> adapt_;
  // Lifetime counters surfaced in stats frames. Atomic (relaxed): workers
  // bump their replica's counters while the event loop aggregates them
  // for a concurrent kStats.
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> warnings_{0};
  // Rolling warning-rate ring: one {samples, warnings} entry per recent
  // query, summed into kStats so operators see drift, not lifetime
  // averages. A mutex (not atomics) because entries are pairs.
  mutable Mutex rolling_mu_;
  std::array<std::pair<std::uint64_t, std::uint64_t>, kRollingWindow>
      rolling_ RANM_GUARDED_BY(rolling_mu_){};
  std::size_t rolling_next_ RANM_GUARDED_BY(rolling_mu_) = 0;
  std::size_t rolling_filled_ RANM_GUARDED_BY(rolling_mu_) = 0;
  // Reused per-query verdict scratch: the serving hot path must not pay
  // steady-state allocator traffic for the bool row.
  std::unique_ptr<bool[]> scratch_;
  std::size_t scratch_capacity_ = 0;
};

}  // namespace ranm::serve
