// In-process core of the serving layer: network + monitor loaded once,
// minibatch membership answered for the lifetime of the process.
//
// The batch-oriented `ranm_cli eval` re-loads the network and monitor
// artifacts on every invocation; at deployment time the monitor instead
// rides along with a live DNN, so the serving layer keeps both resident
// and answers each incoming minibatch through the batch-first pipeline:
// Network::forward_batch (one feature-extraction pass) feeding
// Monitor::contains_batch (one membership query per column). A
// ShardedMonitor is the intended unit of deployment — `threads` fans its
// per-shard row views out across cores — but any flat monitor serves too.
//
// MonitorService is the transport-independent API: tests and
// bench_serving call it directly (no subprocess, no socket), while
// SocketServer exposes the same calls over the frame protocol.
// Like every Monitor, the service is not thread-safe: callers (the
// single-connection server loop, or one test thread) serialise calls.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/monitor_builder.hpp"
#include "nn/network.hpp"
#include "serve/protocol.hpp"

namespace ranm::serve {

/// Long-lived network + monitor pair answering minibatch queries.
class MonitorService {
 public:
  /// Takes ownership of both artifacts. `layer_k` is the monitored layer
  /// (1-based, as everywhere); the monitor's dimension must equal the
  /// layer's feature dimension. `threads` configures shard-level
  /// parallelism on a ShardedMonitor (0 = hardware concurrency) and is
  /// ignored for flat monitors.
  MonitorService(Network net, std::unique_ptr<Monitor> monitor,
                 std::size_t layer_k, std::size_t threads = 1);

  /// Loads both artifacts from disk once — the whole point of the serving
  /// layer over per-invocation CLI loads.
  [[nodiscard]] static MonitorService from_files(
      const std::string& net_path, const std::string& monitor_path,
      std::size_t layer_k, std::size_t threads = 1);

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  /// Answers one minibatch: warns[i] = 1 iff the monitor warns on
  /// inputs[i] (membership negated). Throws std::invalid_argument on a
  /// shape mismatch or an oversized batch; the service stays usable after
  /// a failed query.
  [[nodiscard]] std::vector<std::uint8_t> query_warns(
      std::span<const Tensor> inputs);

  /// Lifetime counters plus the per-shard table `ranm_cli info` shows.
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] std::size_t dimension() const noexcept {
    return monitor_->dimension();
  }
  [[nodiscard]] std::size_t layer_k() const noexcept { return k_; }
  [[nodiscard]] const Monitor& monitor() const noexcept { return *monitor_; }

 private:
  Network net_;
  std::unique_ptr<Monitor> monitor_;
  std::size_t k_;
  std::size_t threads_;
  MonitorBuilder builder_;  // binds net_ + k_; lives exactly as long
  // Lifetime counters surfaced in stats frames.
  std::uint64_t queries_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t warnings_ = 0;
  // Reused per-query verdict scratch: the serving hot path must not pay
  // steady-state allocator traffic for the bool row.
  std::unique_ptr<bool[]> scratch_;
  std::size_t scratch_capacity_ = 0;
};

}  // namespace ranm::serve
