#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/fd_frame.hpp"

namespace ranm::serve {

ServeClient::ServeClient(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("ServeClient: socket path empty or longer "
                                "than the sockaddr_un limit");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("ServeClient: socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("ServeClient: cannot connect to " +
                             socket_path + ": " + std::strerror(saved));
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame ServeClient::round_trip(FrameType request, std::string_view payload,
                              FrameType expected_reply) {
  write_frame_fd(fd_, request, payload);
  FdFrameResult result = read_frame_fd(fd_);
  if (result.eof) {
    throw std::runtime_error("ServeClient: server closed the connection");
  }
  if (result.frame.type == FrameType::kError) {
    throw std::runtime_error("ServeClient: server error: " +
                             decode_error(result.frame.payload));
  }
  if (result.frame.type != expected_reply) {
    throw std::runtime_error("ServeClient: unexpected reply frame type");
  }
  return std::move(result.frame);
}

std::vector<std::uint8_t> ServeClient::query_warns(
    std::span<const Tensor> inputs) {
  const Frame reply = round_trip(FrameType::kQuery, encode_query(inputs),
                                 FrameType::kQueryReply);
  std::vector<std::uint8_t> warns = decode_verdicts(reply.payload);
  if (warns.size() != inputs.size()) {
    throw std::runtime_error("ServeClient: verdict count mismatch");
  }
  return warns;
}

ServiceStats ServeClient::stats() {
  const Frame reply =
      round_trip(FrameType::kStats, "", FrameType::kStatsReply);
  return decode_stats(reply.payload);
}

void ServeClient::shutdown_server() {
  (void)round_trip(FrameType::kShutdown, "", FrameType::kShutdownAck);
}

}  // namespace ranm::serve
