#include "serve/client.hpp"

#include <unistd.h>

#include <utility>

#include "serve/endpoint.hpp"
#include "serve/fd_frame.hpp"

namespace ranm::serve {

ServeClient::ServeClient(const std::string& socket_path)
    : fd_(connect_unix(socket_path)) {}

ServeClient::ServeClient(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

const Frame& ServeClient::round_trip(FrameType request,
                                     std::string_view payload,
                                     FrameType expected_reply) {
  write_frame_fd(fd_, request, payload);
  if (read_frame_fd(fd_, reply_) != FdReadStatus::kFrame) {
    throw std::runtime_error("ServeClient: server closed the connection");
  }
  if (reply_.type == FrameType::kOverloaded) {
    throw ServerOverloadedError(decode_error(reply_.payload));
  }
  if (reply_.type == FrameType::kError) {
    throw std::runtime_error("ServeClient: server error: " +
                             decode_error(reply_.payload));
  }
  if (reply_.type != expected_reply) {
    throw std::runtime_error("ServeClient: unexpected reply frame type");
  }
  return reply_;
}

void ServeClient::query_warns_into(std::span<const Tensor> inputs,
                                   std::vector<std::uint8_t>& warns) {
  encode_query_into(scratch_, inputs);
  const Frame& reply =
      round_trip(FrameType::kQuery, scratch_, FrameType::kQueryReply);
  decode_verdicts_into(reply.payload, warns);
  if (warns.size() != inputs.size()) {
    throw std::runtime_error("ServeClient: verdict count mismatch");
  }
}

std::vector<std::uint8_t> ServeClient::query_warns(
    std::span<const Tensor> inputs) {
  std::vector<std::uint8_t> warns;
  query_warns_into(inputs, warns);
  return warns;
}

ObserveReply ServeClient::observe(std::span<const Tensor> inputs) {
  encode_query_into(scratch_, inputs);
  const Frame& reply =
      round_trip(FrameType::kObserve, scratch_, FrameType::kObserveReply);
  return decode_observe_reply(reply.payload);
}

SwapReply ServeClient::swap() {
  const Frame& reply =
      round_trip(FrameType::kSwap, "", FrameType::kSwapReply);
  return decode_swap_reply(reply.payload);
}

RollbackReply ServeClient::rollback(std::uint64_t generation) {
  const Frame& reply =
      round_trip(FrameType::kRollback, encode_rollback(generation),
                 FrameType::kRollbackReply);
  return decode_rollback_reply(reply.payload);
}

ServiceStats ServeClient::stats() {
  const Frame& reply =
      round_trip(FrameType::kStats, "", FrameType::kStatsReply);
  return decode_stats(reply.payload);
}

void ServeClient::shutdown_server() {
  (void)round_trip(FrameType::kShutdown, "", FrameType::kShutdownAck);
}

}  // namespace ranm::serve
