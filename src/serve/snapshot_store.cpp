#include "serve/snapshot_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace ranm::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("SnapshotStore: " + what + ": " +
                           std::strerror(errno));
}

/// fsync a directory so a completed rename survives power loss.
void sync_directory(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open directory " + dir.string());
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("fsync directory " + dir.string());
}

/// Parses `gen-NNNNNN.rmon`; returns 0 for anything else (including the
/// `.tmp` leftovers of an interrupted save).
std::uint64_t parse_generation(const std::string& name) {
  unsigned long long gen = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "gen-%llu.rmon%n", &gen, &consumed) != 1 ||
      consumed != int(name.size())) {
    return 0;
  }
  return gen;
}

}  // namespace

std::string SnapshotStore::file_name(std::uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "gen-%06llu.rmon",
                static_cast<unsigned long long>(generation));
  return buf;
}

SnapshotStore::SnapshotStore(std::filesystem::path dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(std::max<std::size_t>(1, keep)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("SnapshotStore: cannot create " + dir_.string() +
                             ": " + ec.message());
  }
}

void SnapshotStore::save(std::uint64_t generation, std::string_view bytes) {
  if (generation == 0) {
    throw std::invalid_argument("SnapshotStore: generation 0 is reserved");
  }
  const std::filesystem::path final_path = dir_ / file_name(generation);
  const std::filesystem::path tmp_path =
      dir_ / (file_name(generation) + ".tmp");

  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open " + tmp_path.string());
  const char* cur = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, cur, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write " + tmp_path.string());
    }
    cur += n;
    left -= std::size_t(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync " + tmp_path.string());
  }
  if (::close(fd) != 0) throw_errno("close " + tmp_path.string());
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw_errno("rename " + tmp_path.string());
  }
  sync_directory(dir_);

  // Prune: drop generations beyond the newest `keep_`, plus any stray
  // temp files a crashed save left behind.
  std::vector<std::uint64_t> gens = generations();
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.rfind(".tmp") == name.size() - 4) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  if (gens.size() > keep_) {
    for (std::size_t i = 0; i + keep_ < gens.size(); ++i) {
      std::filesystem::remove(dir_ / file_name(gens[i]), ec);
    }
  }
}

std::string SnapshotStore::load(std::uint64_t generation) const {
  const std::filesystem::path path = dir_ / file_name(generation);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("SnapshotStore: unknown generation " +
                             std::to_string(generation) + " (no " +
                             path.string() + ")");
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("SnapshotStore: read failed for " +
                             path.string());
  }
  return std::move(bytes).str();
}

std::uint64_t SnapshotStore::latest() const {
  const std::vector<std::uint64_t> gens = generations();
  return gens.empty() ? 0 : gens.back();
}

std::vector<std::uint64_t> SnapshotStore::generations() const {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::uint64_t gen =
        parse_generation(entry.path().filename().string());
    if (gen != 0) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

}  // namespace ranm::serve
