#include "serve/protocol.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "io/wire.hpp"

namespace ranm::serve {
namespace {

bool known_frame_type(std::uint32_t raw) {
  return raw >= std::uint32_t(FrameType::kQuery) &&
         raw <= std::uint32_t(FrameType::kRollbackReply);
}

/// A payload must parse exactly: leftover bytes mean the frame length and
/// its contents disagree, i.e. corruption.
void require_exhausted(const io::ByteView& in) {
  if (!in.exhausted()) {
    throw std::runtime_error("ranm::serve: trailing bytes in frame payload");
  }
}

}  // namespace

void encode_frame_header(char (&buf)[kFrameHeaderBytes], FrameType type,
                         std::uint64_t payload_len) {
  const std::uint32_t magic = kFrameMagic;
  const auto raw_type = std::uint32_t(type);
  std::memcpy(buf, &magic, sizeof magic);
  std::memcpy(buf + 4, &raw_type, sizeof raw_type);
  std::memcpy(buf + 8, &payload_len, sizeof payload_len);
}

FrameHeader decode_frame_header(const char (&buf)[kFrameHeaderBytes]) {
  std::uint32_t magic = 0;
  std::uint32_t raw_type = 0;
  std::uint64_t len = 0;
  std::memcpy(&magic, buf, sizeof magic);
  std::memcpy(&raw_type, buf + 4, sizeof raw_type);
  std::memcpy(&len, buf + 8, sizeof len);
  if (magic != kFrameMagic) {
    throw std::runtime_error("ranm::serve: bad frame magic");
  }
  if (!known_frame_type(raw_type)) {
    throw std::runtime_error("ranm::serve: unknown frame type");
  }
  if (len > kMaxFramePayload) {
    throw std::runtime_error("ranm::serve: oversized frame payload");
  }
  return {FrameType(raw_type), len};
}

void write_frame(std::ostream& out, FrameType type,
                 std::string_view payload) {
  char header[kFrameHeaderBytes];
  encode_frame_header(header, type, payload.size());
  out.write(header, kFrameHeaderBytes);
  out.write(payload.data(), std::streamsize(payload.size()));
}

Frame read_frame(std::istream& in) {
  char buf[kFrameHeaderBytes];
  in.read(buf, kFrameHeaderBytes);
  if (!in) throw std::runtime_error("ranm::serve: truncated frame header");
  const FrameHeader header = decode_frame_header(buf);
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(std::size_t(header.payload_len));
  in.read(frame.payload.data(), std::streamsize(header.payload_len));
  if (!in) throw std::runtime_error("ranm::serve: truncated frame payload");
  return frame;
}

std::size_t sample_wire_bytes(const Tensor& t) {
  // write_tensor: u64 rank + one u64 per dimension + the float data.
  return 8 + t.rank() * 8 + t.numel() * sizeof(float);
}

void encode_query_into(std::string& out, std::span<const Tensor> inputs) {
  if (inputs.size() > kMaxQuerySamples) {
    throw std::invalid_argument("encode_query: batch too large");
  }
  out.clear();
  io::append_u64(out, inputs.size());
  for (const Tensor& t : inputs) io::append_tensor(out, t);
  // The sample-count cap alone does not bound the frame: large tensors
  // hit the payload cap first. Failing here gives the caller a clear
  // error instead of a server-side header rejection mid-stream.
  if (out.size() > kMaxFramePayload) {
    throw std::invalid_argument(
        "encode_query: batch exceeds the frame payload cap — split it "
        "into smaller batches");
  }
}

std::string encode_query(std::span<const Tensor> inputs) {
  std::string payload;
  encode_query_into(payload, inputs);
  return payload;
}

std::size_t max_query_batch(const Tensor& sample) {
  const std::size_t per_sample = sample_wire_bytes(sample);
  const std::size_t fit = (std::size_t(kMaxFramePayload) - 8) / per_sample;
  return std::max<std::size_t>(
      1, std::min<std::size_t>(fit, std::size_t(kMaxQuerySamples)));
}

std::vector<Tensor> decode_query(std::string_view payload) {
  io::ByteView in(payload);
  const std::uint64_t n = in.read_u64();
  if (n > kMaxQuerySamples) {
    throw std::runtime_error("ranm::serve: implausible query sample count");
  }
  std::vector<Tensor> inputs;
  inputs.reserve(std::size_t(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    inputs.push_back(in.read_tensor());
  }
  require_exhausted(in);
  return inputs;
}

void encode_verdicts_into(std::string& out,
                          std::span<const std::uint8_t> warns) {
  out.clear();
  io::append_u64(out, warns.size());
  out.append(reinterpret_cast<const char*>(warns.data()), warns.size());
}

std::string encode_verdicts(std::span<const std::uint8_t> warns) {
  std::string payload;
  encode_verdicts_into(payload, warns);
  return payload;
}

void decode_verdicts_into(std::string_view payload,
                          std::vector<std::uint8_t>& warns) {
  io::ByteView in(payload);
  const std::uint64_t n = in.read_u64();
  if (n > kMaxQuerySamples) {
    throw std::runtime_error("ranm::serve: implausible verdict count");
  }
  warns.clear();
  warns.resize(static_cast<std::size_t>(n));
  in.read_bytes(reinterpret_cast<char*>(warns.data()), warns.size());
  for (const std::uint8_t w : warns) {
    if (w > 1) throw std::runtime_error("ranm::serve: non-boolean verdict");
  }
  require_exhausted(in);
}

std::vector<std::uint8_t> decode_verdicts(std::string_view payload) {
  std::vector<std::uint8_t> warns;
  decode_verdicts_into(payload, warns);
  return warns;
}

void encode_observe_reply_into(std::string& out, const ObserveReply& reply) {
  out.clear();
  io::append_u64(out, reply.accepted);
  io::append_u64(out, reply.staged_total);
  io::append_u64(out, reply.novel);
}

std::string encode_observe_reply(const ObserveReply& reply) {
  std::string payload;
  encode_observe_reply_into(payload, reply);
  return payload;
}

ObserveReply decode_observe_reply(std::string_view payload) {
  io::ByteView in(payload);
  ObserveReply reply;
  reply.accepted = in.read_u64();
  reply.staged_total = in.read_u64();
  reply.novel = in.read_u64();
  if (reply.accepted > kMaxQuerySamples || reply.novel > reply.accepted) {
    throw std::runtime_error("ranm::serve: implausible observe counters");
  }
  require_exhausted(in);
  return reply;
}

std::string encode_swap_reply(const SwapReply& reply) {
  std::string out;
  io::append_u64(out, reply.generation);
  io::append_u64(out, reply.staged_applied);
  io::append_u64(out, reply.duration_us);
  io::append_string(out, reply.monitor);
  return out;
}

SwapReply decode_swap_reply(std::string_view payload) {
  io::ByteView in(payload);
  SwapReply reply;
  reply.generation = in.read_u64();
  reply.staged_applied = in.read_u64();
  reply.duration_us = in.read_u64();
  reply.monitor = in.read_string(kMaxFrameString);
  require_exhausted(in);
  return reply;
}

std::string encode_rollback(std::uint64_t target) {
  std::string out;
  io::append_u64(out, target);
  return out;
}

std::uint64_t decode_rollback(std::string_view payload) {
  io::ByteView in(payload);
  const std::uint64_t target = in.read_u64();
  require_exhausted(in);
  return target;
}

std::string encode_rollback_reply(const RollbackReply& reply) {
  std::string out;
  io::append_u64(out, reply.generation);
  io::append_string(out, reply.monitor);
  return out;
}

RollbackReply decode_rollback_reply(std::string_view payload) {
  io::ByteView in(payload);
  RollbackReply reply;
  reply.generation = in.read_u64();
  reply.monitor = in.read_string(kMaxFrameString);
  require_exhausted(in);
  return reply;
}

std::string encode_stats(const ServiceStats& stats) {
  if (stats.shards.size() > kMaxStatsShards) {
    throw std::invalid_argument("encode_stats: too many shards");
  }
  if (stats.workers.size() > kMaxStatsWorkers) {
    throw std::invalid_argument("encode_stats: too many workers");
  }
  std::string out;
  io::append_string(out, stats.monitor);
  io::append_u64(out, stats.dimension);
  io::append_u64(out, stats.layer);
  io::append_u64(out, stats.threads);
  io::append_u64(out, stats.queries);
  io::append_u64(out, stats.samples);
  io::append_u64(out, stats.warnings);
  io::append_u64(out, stats.workers.size());
  for (const WorkerCountersWire& w : stats.workers) {
    io::append_u64(out, w.queries);
    io::append_u64(out, w.samples);
    io::append_u64(out, w.warnings);
  }
  io::append_u64(out, stats.in_flight);
  io::append_u64(out, stats.queue_depth);
  io::append_u64(out, stats.queue_capacity);
  io::append_u64(out, stats.overloaded);
  io::append_u64(out, stats.generation);
  io::append_u64(out, stats.staged_samples);
  io::append_u64(out, stats.swaps);
  io::append_u64(out, stats.rollbacks);
  io::append_u64(out, stats.rolling_samples);
  io::append_u64(out, stats.rolling_warnings);
  io::append_string(out, stats.shard_strategy);
  io::append_u64(out, stats.shard_seed);
  io::append_u64(out, stats.shards.size());
  for (const ShardStatsWire& s : stats.shards) {
    io::append_u64(out, s.neurons);
    io::append_u64(out, s.bdd_nodes);
    io::append_u64(out, s.cubes_inserted);
    io::append_u64(out, s.novel);
    io::append_pod(out, s.patterns);
  }
  return out;
}

ServiceStats decode_stats(std::string_view payload) {
  io::ByteView in(payload);
  ServiceStats stats;
  stats.monitor = in.read_string(kMaxFrameString);
  stats.dimension = in.read_u64();
  stats.layer = in.read_u64();
  stats.threads = in.read_u64();
  stats.queries = in.read_u64();
  stats.samples = in.read_u64();
  stats.warnings = in.read_u64();
  const std::uint64_t worker_count = in.read_u64();
  if (worker_count > kMaxStatsWorkers) {
    throw std::runtime_error("ranm::serve: implausible worker count");
  }
  stats.workers.resize(std::size_t(worker_count));
  for (WorkerCountersWire& w : stats.workers) {
    w.queries = in.read_u64();
    w.samples = in.read_u64();
    w.warnings = in.read_u64();
  }
  stats.in_flight = in.read_u64();
  stats.queue_depth = in.read_u64();
  stats.queue_capacity = in.read_u64();
  stats.overloaded = in.read_u64();
  stats.generation = in.read_u64();
  stats.staged_samples = in.read_u64();
  stats.swaps = in.read_u64();
  stats.rollbacks = in.read_u64();
  stats.rolling_samples = in.read_u64();
  stats.rolling_warnings = in.read_u64();
  stats.shard_strategy = in.read_string(kMaxFrameString);
  stats.shard_seed = in.read_u64();
  const std::uint64_t shard_count = in.read_u64();
  if (shard_count > kMaxStatsShards) {
    throw std::runtime_error("ranm::serve: implausible shard count");
  }
  stats.shards.resize(std::size_t(shard_count));
  for (ShardStatsWire& s : stats.shards) {
    s.neurons = in.read_u64();
    s.bdd_nodes = in.read_u64();
    s.cubes_inserted = in.read_u64();
    s.novel = in.read_u64();
    s.patterns = in.read_pod<double>();
  }
  require_exhausted(in);
  return stats;
}

std::string encode_error(std::string_view message) {
  std::string out;
  io::append_string(out, message.substr(0, kMaxFrameString));
  return out;
}

std::string decode_error(std::string_view payload) {
  io::ByteView in(payload);
  std::string message = in.read_string(kMaxFrameString);
  require_exhausted(in);
  return message;
}

}  // namespace ranm::serve
