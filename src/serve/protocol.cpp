#include "serve/protocol.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "io/wire.hpp"

namespace ranm::serve {
namespace {

bool known_frame_type(std::uint32_t raw) {
  return raw >= std::uint32_t(FrameType::kQuery) &&
         raw <= std::uint32_t(FrameType::kError);
}

/// A payload must parse exactly: leftover bytes mean the frame length and
/// its contents disagree, i.e. corruption.
void require_exhausted(std::istream& in) {
  if (in.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("ranm::serve: trailing bytes in frame payload");
  }
}

std::istringstream payload_stream(const std::string& payload) {
  return std::istringstream(payload, std::ios::binary);
}

}  // namespace

void encode_frame_header(char (&buf)[kFrameHeaderBytes], FrameType type,
                         std::uint64_t payload_len) {
  const std::uint32_t magic = kFrameMagic;
  const auto raw_type = std::uint32_t(type);
  std::memcpy(buf, &magic, sizeof magic);
  std::memcpy(buf + 4, &raw_type, sizeof raw_type);
  std::memcpy(buf + 8, &payload_len, sizeof payload_len);
}

FrameHeader decode_frame_header(const char (&buf)[kFrameHeaderBytes]) {
  std::uint32_t magic = 0;
  std::uint32_t raw_type = 0;
  std::uint64_t len = 0;
  std::memcpy(&magic, buf, sizeof magic);
  std::memcpy(&raw_type, buf + 4, sizeof raw_type);
  std::memcpy(&len, buf + 8, sizeof len);
  if (magic != kFrameMagic) {
    throw std::runtime_error("ranm::serve: bad frame magic");
  }
  if (!known_frame_type(raw_type)) {
    throw std::runtime_error("ranm::serve: unknown frame type");
  }
  if (len > kMaxFramePayload) {
    throw std::runtime_error("ranm::serve: oversized frame payload");
  }
  return {FrameType(raw_type), len};
}

void write_frame(std::ostream& out, FrameType type,
                 std::string_view payload) {
  char header[kFrameHeaderBytes];
  encode_frame_header(header, type, payload.size());
  out.write(header, kFrameHeaderBytes);
  out.write(payload.data(), std::streamsize(payload.size()));
}

Frame read_frame(std::istream& in) {
  char buf[kFrameHeaderBytes];
  in.read(buf, kFrameHeaderBytes);
  if (!in) throw std::runtime_error("ranm::serve: truncated frame header");
  const FrameHeader header = decode_frame_header(buf);
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(std::size_t(header.payload_len));
  in.read(frame.payload.data(), std::streamsize(header.payload_len));
  if (!in) throw std::runtime_error("ranm::serve: truncated frame payload");
  return frame;
}

std::size_t sample_wire_bytes(const Tensor& t) {
  // write_tensor: u64 rank + one u64 per dimension + the float data.
  return 8 + t.rank() * 8 + t.numel() * sizeof(float);
}

std::string encode_query(std::span<const Tensor> inputs) {
  if (inputs.size() > kMaxQuerySamples) {
    throw std::invalid_argument("encode_query: batch too large");
  }
  std::ostringstream out(std::ios::binary);
  io::write_u64(out, inputs.size());
  for (const Tensor& t : inputs) io::write_tensor(out, t);
  std::string payload = std::move(out).str();
  // The sample-count cap alone does not bound the frame: large tensors
  // hit the payload cap first. Failing here gives the caller a clear
  // error instead of a server-side header rejection mid-stream.
  if (payload.size() > kMaxFramePayload) {
    throw std::invalid_argument(
        "encode_query: batch exceeds the frame payload cap — split it "
        "into smaller batches");
  }
  return payload;
}

std::size_t max_query_batch(const Tensor& sample) {
  const std::size_t per_sample = sample_wire_bytes(sample);
  const std::size_t fit = (std::size_t(kMaxFramePayload) - 8) / per_sample;
  return std::max<std::size_t>(
      1, std::min<std::size_t>(fit, std::size_t(kMaxQuerySamples)));
}

std::vector<Tensor> decode_query(const std::string& payload) {
  auto in = payload_stream(payload);
  const std::uint64_t n = io::read_u64(in);
  if (n > kMaxQuerySamples) {
    throw std::runtime_error("ranm::serve: implausible query sample count");
  }
  std::vector<Tensor> inputs;
  inputs.reserve(std::size_t(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    inputs.push_back(io::read_tensor(in));
  }
  require_exhausted(in);
  return inputs;
}

std::string encode_verdicts(std::span<const std::uint8_t> warns) {
  std::ostringstream out(std::ios::binary);
  io::write_u64(out, warns.size());
  out.write(reinterpret_cast<const char*>(warns.data()),
            std::streamsize(warns.size()));
  return std::move(out).str();
}

std::vector<std::uint8_t> decode_verdicts(const std::string& payload) {
  auto in = payload_stream(payload);
  const std::uint64_t n = io::read_u64(in);
  if (n > kMaxQuerySamples) {
    throw std::runtime_error("ranm::serve: implausible verdict count");
  }
  std::vector<std::uint8_t> warns(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(warns.data()), std::streamsize(n));
  if (!in) throw std::runtime_error("ranm::serve: truncated verdicts");
  for (const std::uint8_t w : warns) {
    if (w > 1) throw std::runtime_error("ranm::serve: non-boolean verdict");
  }
  require_exhausted(in);
  return warns;
}

std::string encode_stats(const ServiceStats& stats) {
  if (stats.shards.size() > kMaxStatsShards) {
    throw std::invalid_argument("encode_stats: too many shards");
  }
  std::ostringstream out(std::ios::binary);
  io::write_string(out, stats.monitor);
  io::write_u64(out, stats.dimension);
  io::write_u64(out, stats.layer);
  io::write_u64(out, stats.threads);
  io::write_u64(out, stats.queries);
  io::write_u64(out, stats.samples);
  io::write_u64(out, stats.warnings);
  io::write_string(out, stats.shard_strategy);
  io::write_u64(out, stats.shard_seed);
  io::write_u64(out, stats.shards.size());
  for (const ShardStatsWire& s : stats.shards) {
    io::write_u64(out, s.neurons);
    io::write_u64(out, s.bdd_nodes);
    io::write_u64(out, s.cubes_inserted);
    io::write_pod(out, s.patterns);
  }
  return std::move(out).str();
}

ServiceStats decode_stats(const std::string& payload) {
  auto in = payload_stream(payload);
  ServiceStats stats;
  stats.monitor = io::read_string(in, kMaxFrameString);
  stats.dimension = io::read_u64(in);
  stats.layer = io::read_u64(in);
  stats.threads = io::read_u64(in);
  stats.queries = io::read_u64(in);
  stats.samples = io::read_u64(in);
  stats.warnings = io::read_u64(in);
  stats.shard_strategy = io::read_string(in, kMaxFrameString);
  stats.shard_seed = io::read_u64(in);
  const std::uint64_t shard_count = io::read_u64(in);
  if (shard_count > kMaxStatsShards) {
    throw std::runtime_error("ranm::serve: implausible shard count");
  }
  stats.shards.resize(std::size_t(shard_count));
  for (ShardStatsWire& s : stats.shards) {
    s.neurons = io::read_u64(in);
    s.bdd_nodes = io::read_u64(in);
    s.cubes_inserted = io::read_u64(in);
    s.patterns = io::read_pod<double>(in);
  }
  require_exhausted(in);
  return stats;
}

std::string encode_error(std::string_view message) {
  std::ostringstream out(std::ios::binary);
  io::write_string(out, message.substr(0, kMaxFrameString));
  return std::move(out).str();
}

std::string decode_error(const std::string& payload) {
  auto in = payload_stream(payload);
  std::string message = io::read_string(in, kMaxFrameString);
  require_exhausted(in);
  return message;
}

}  // namespace ranm::serve
