#include "serve/fd_frame.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ranm::serve {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("ranm::serve: ") + what + ": " +
                           std::strerror(errno));
}

/// Blocks until `fd` is readable; returns false if `stop_fd` fired first.
bool wait_readable(int fd, int stop_fd) {
  pollfd fds[2];
  fds[0] = {fd, POLLIN, 0};
  fds[1] = {stop_fd, POLLIN, 0};
  const nfds_t n = stop_fd >= 0 ? 2 : 1;
  for (;;) {
    const int rc = ::poll(fds, n, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (n == 2 && (fds[1].revents & (POLLIN | POLLHUP)) != 0) return false;
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) return true;
  }
}

enum class ReadStatus { kOk, kEof, kStopped };

/// Reads exactly `len` bytes. kEof only if the peer closed before the
/// first byte (`clean_eof_ok`); mid-buffer EOF is a truncation error.
ReadStatus read_exact(int fd, int stop_fd, char* buf, std::size_t len,
                      bool clean_eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    if (!wait_readable(fd, stop_fd)) return ReadStatus::kStopped;
    const ssize_t rc = ::recv(fd, buf + got, len - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (rc == 0) {
      if (got == 0 && clean_eof_ok) return ReadStatus::kEof;
      throw std::runtime_error("ranm::serve: truncated frame");
    }
    got += std::size_t(rc);
  }
  return ReadStatus::kOk;
}

}  // namespace

FdReadStatus read_frame_fd(int fd, Frame& out, int stop_fd) {
  char header[kFrameHeaderBytes];
  switch (read_exact(fd, stop_fd, header, kFrameHeaderBytes, true)) {
    case ReadStatus::kEof:
      return FdReadStatus::kEof;
    case ReadStatus::kStopped:
      return FdReadStatus::kStopped;
    case ReadStatus::kOk:
      break;
  }
  // Validates magic/type and bounds the length before the buffer below
  // resizes from it.
  const FrameHeader parsed = decode_frame_header(header);
  out.type = parsed.type;
  out.payload.resize(std::size_t(parsed.payload_len));
  if (parsed.payload_len > 0) {
    switch (read_exact(fd, stop_fd, out.payload.data(),
                       std::size_t(parsed.payload_len), false)) {
      case ReadStatus::kStopped:
        return FdReadStatus::kStopped;
      case ReadStatus::kEof:
      case ReadStatus::kOk:
        break;
    }
  }
  return FdReadStatus::kFrame;
}

void write_frame_fd(int fd, FrameType type, std::string_view payload) {
  char header[kFrameHeaderBytes];
  encode_frame_header(header, type, payload.size());
  // Header and payload leave in one writev: one syscall and — with
  // TCP_NODELAY — one segment per frame, so the receiver wakes once
  // instead of once per piece.
  std::size_t sent = 0;
  const std::size_t total = kFrameHeaderBytes + payload.size();
  while (sent < total) {
    // The gather list is rebuilt from the cumulative offset on every
    // (rare) partial send — simpler than mutating iovec cursors in place.
    iovec iov[2];
    int parts = 0;
    if (sent < kFrameHeaderBytes) {
      iov[parts++] = {header + sent, kFrameHeaderBytes - sent};
      if (!payload.empty()) {
        iov[parts++] = {const_cast<char*>(payload.data()), payload.size()};
      }
    } else {
      const std::size_t off = sent - kFrameHeaderBytes;
      iov[parts++] = {const_cast<char*>(payload.data()) + off,
                      payload.size() - off};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(parts);
    const ssize_t rc = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("sendmsg");
    }
    sent += std::size_t(rc);
  }
}

}  // namespace ranm::serve
