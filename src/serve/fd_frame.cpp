#include "serve/fd_frame.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ranm::serve {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("ranm::serve: ") + what + ": " +
                           std::strerror(errno));
}

/// Blocks until `fd` is readable; returns false if `stop_fd` fired first.
bool wait_readable(int fd, int stop_fd) {
  pollfd fds[2];
  fds[0] = {fd, POLLIN, 0};
  fds[1] = {stop_fd, POLLIN, 0};
  const nfds_t n = stop_fd >= 0 ? 2 : 1;
  for (;;) {
    const int rc = ::poll(fds, n, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (n == 2 && (fds[1].revents & (POLLIN | POLLHUP)) != 0) return false;
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) return true;
  }
}

enum class ReadStatus { kOk, kEof, kStopped };

/// Reads exactly `len` bytes. kEof only if the peer closed before the
/// first byte (`clean_eof_ok`); mid-buffer EOF is a truncation error.
ReadStatus read_exact(int fd, int stop_fd, char* buf, std::size_t len,
                      bool clean_eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    if (!wait_readable(fd, stop_fd)) return ReadStatus::kStopped;
    const ssize_t rc = ::recv(fd, buf + got, len - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (rc == 0) {
      if (got == 0 && clean_eof_ok) return ReadStatus::kEof;
      throw std::runtime_error("ranm::serve: truncated frame");
    }
    got += std::size_t(rc);
  }
  return ReadStatus::kOk;
}

void write_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t rc = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += std::size_t(rc);
  }
}

}  // namespace

FdFrameResult read_frame_fd(int fd, int stop_fd) {
  FdFrameResult result;
  char header[kFrameHeaderBytes];
  switch (read_exact(fd, stop_fd, header, kFrameHeaderBytes, true)) {
    case ReadStatus::kEof:
      result.eof = true;
      return result;
    case ReadStatus::kStopped:
      result.stopped = true;
      return result;
    case ReadStatus::kOk:
      break;
  }
  // Validates magic/type and bounds the length before the buffer below
  // allocates from it.
  const FrameHeader parsed = decode_frame_header(header);
  result.frame.type = parsed.type;
  result.frame.payload.resize(std::size_t(parsed.payload_len));
  if (parsed.payload_len > 0) {
    switch (read_exact(fd, stop_fd, result.frame.payload.data(),
                       std::size_t(parsed.payload_len), false)) {
      case ReadStatus::kStopped:
        result.stopped = true;
        return result;
      case ReadStatus::kEof:
      case ReadStatus::kOk:
        break;
    }
  }
  return result;
}

void write_frame_fd(int fd, FrameType type, std::string_view payload) {
  char header[kFrameHeaderBytes];
  encode_frame_header(header, type, payload.size());
  write_all(fd, header, kFrameHeaderBytes);
  write_all(fd, payload.data(), payload.size());
}

}  // namespace ranm::serve
