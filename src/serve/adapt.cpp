#include "serve/adapt.hpp"

#include <algorithm>
#include <stdexcept>

namespace ranm::serve {

AdaptState::AdaptState(std::size_t dimension, std::string base_artifact,
                       std::size_t shard_count, std::size_t max_staged)
    : dimension_(dimension), max_staged_(max_staged) {
  if (dimension_ == 0) {
    throw std::invalid_argument("AdaptState: zero dimension");
  }
  MutexLock lock(mu_);
  history_.push_back({1, std::move(base_artifact)});
  shard_novel_.assign(shard_count, 0);
}

std::uint64_t AdaptState::stage(const FeatureBatch& features,
                                std::span<const std::uint64_t> shard_novel) {
  if (features.dimension() != dimension_) {
    throw std::invalid_argument("AdaptState: feature dimension mismatch");
  }
  MutexLock lock(mu_);
  const std::size_t staged = staged_.size() / dimension_;
  if (staged + features.size() > max_staged_) {
    throw std::runtime_error(
        "AdaptState: staged-sample cap reached — swap (or restart) before "
        "observing more");
  }
  std::vector<float> column(dimension_);
  for (std::size_t i = 0; i < features.size(); ++i) {
    features.copy_sample(i, column);
    staged_.insert(staged_.end(), column.begin(), column.end());
  }
  if (shard_novel.size() == shard_novel_.size()) {
    for (std::size_t s = 0; s < shard_novel_.size(); ++s) {
      shard_novel_[s] += shard_novel[s];
    }
  }
  return staged + features.size();
}

RebuildInput AdaptState::rebuild_input() const {
  MutexLock lock(mu_);
  RebuildInput input;
  input.base_artifact = history_.back().bytes;
  input.features = staged_;
  input.staged_count = staged_.size() / dimension_;
  return input;
}

std::uint64_t AdaptState::commit_swap(std::string bytes,
                                      std::uint64_t applied) {
  MutexLock lock(mu_);
  const std::uint64_t gen = ++last_assigned_;
  generation_ = gen;
  ++swaps_;
  if (store_) store_->save(gen, bytes);
  history_.push_back({gen, std::move(bytes)});
  if (history_.size() > kHistoryDepth) {
    history_.erase(history_.begin());
  }
  // Drain exactly the prefix the rebuild consumed: samples staged while
  // the rebuild ran stay queued for the next one.
  const std::size_t drained =
      std::min(staged_.size(), std::size_t(applied) * dimension_);
  staged_.erase(staged_.begin(),
                staged_.begin() + std::ptrdiff_t(drained));
  std::fill(shard_novel_.begin(), shard_novel_.end(), 0);
  return gen;
}

std::pair<std::uint64_t, std::string> AdaptState::checkout(
    std::uint64_t target) const {
  MutexLock lock(mu_);
  std::uint64_t resolved = target;
  if (resolved == 0) {
    // "The previous one": newest known generation older than the one
    // being served, from memory history or the attached store.
    for (const Generation& g : history_) {
      if (g.id < generation_ && g.id > resolved) resolved = g.id;
    }
    if (store_) {
      for (const std::uint64_t g : store_->generations()) {
        if (g < generation_ && g > resolved) resolved = g;
      }
    }
    if (resolved == 0) {
      throw std::runtime_error(
          "rollback: no previous generation to restore");
    }
  }
  for (const Generation& g : history_) {
    if (g.id == resolved) return {resolved, g.bytes};
  }
  if (store_) return {resolved, store_->load(resolved)};
  throw std::runtime_error("rollback: unknown generation " +
                           std::to_string(resolved));
}

void AdaptState::commit_rollback(std::uint64_t generation,
                                 std::string bytes) {
  MutexLock lock(mu_);
  generation_ = generation;
  ++rollbacks_;
  // Future rebuilds start from the restored artifact: move it to the
  // back of the history (rebuild_input reads back()), deduplicated.
  std::erase_if(history_,
                [&](const Generation& g) { return g.id == generation; });
  history_.push_back({generation, std::move(bytes)});
  if (history_.size() > kHistoryDepth) history_.erase(history_.begin());
}

std::pair<std::uint64_t, std::string> AdaptState::attach_store(
    std::unique_ptr<SnapshotStore> store) {
  MutexLock lock(mu_);
  store_ = std::move(store);
  const std::uint64_t resume = store_->latest();
  if (resume > generation_) {
    // Daemon restart over an existing store: adopt the newest persisted
    // generation instead of re-serving the (older) boot artifact.
    std::string bytes = store_->load(resume);
    generation_ = resume;
    last_assigned_ = std::max(last_assigned_, resume);
    history_.push_back({resume, bytes});
    if (history_.size() > kHistoryDepth) history_.erase(history_.begin());
    return {resume, std::move(bytes)};
  }
  if (resume < generation_) {
    store_->save(generation_, history_.back().bytes);
  }
  return {0, std::string()};
}

AdaptTelemetry AdaptState::telemetry() const {
  MutexLock lock(mu_);
  AdaptTelemetry t;
  t.generation = generation_;
  t.staged_samples = staged_.size() / dimension_;
  t.swaps = swaps_;
  t.rollbacks = rollbacks_;
  t.shard_novel = shard_novel_;
  return t;
}

}  // namespace ranm::serve
