// Concurrent front end of the serving layer: one epoll event loop
// multiplexing many connections, a fixed pool of worker threads each
// holding its own MonitorService replica, and a bounded request queue
// between them.
//
// Architecture (replaces the PR 4 one-connection-at-a-time SocketServer):
//
//   clients ──► listeners (Unix socket and/or TCP, both optional)
//                  │ accept (nonblocking)
//                  ▼
//   event loop ── per-connection nonblocking state machines: partial
//        │        frames are buffered per connection (a slow-loris writer
//        │        never blocks the loop), replies are flushed as the
//        │        socket drains (a slow reader never blocks it either)
//        ▼
//   bounded request queue ── full ⇒ the query is answered kOverloaded
//        │                   immediately (explicit backpressure instead of
//        ▼                   unbounded buffering); the connection survives
//   N workers ── each owns a private MonitorService replica (monitors are
//                read-only after load, so replicas never share mutable
//                state and queries execute in parallel without a global
//                lock); replies travel back to the loop, which owns all
//                socket writes
//
// With workers == 1 the pool degenerates: the loop executes queries
// inline on the single replica (everything would serialise through it
// anyway, so the cross-thread handoff would be pure overhead). The
// bounded queue and kOverloaded apply to the pooled (workers >= 2) shape.
//
// Protocol ordering: at most one query per connection is in flight at a
// time — the loop stops parsing (and reading) a connection while its
// request is with a worker, so replies can never reorder and a pipelining
// client is backpressured by its own socket buffer.
//
// Shutdown is a graceful drain, from stop() (async-signal-safe: one
// eventfd write, callable from a SIGTERM handler) or a client kShutdown
// frame: listeners close, reads stop, every query already accepted —
// dispatched, queued, or fully buffered — is answered and flushed, then
// run() returns.
//
// Monitor lifecycle: kObserve frames dispatch like queries (the staging
// pool is shared across replicas). kSwap runs the rebuild on a dedicated
// background thread — the loop and the workers keep answering queries
// off their current snapshots — then every replica adopts the same
// artifact and the generation commits once; at most one swap is in
// flight (a second kSwap is answered kError). kRollback executes inline
// on the loop thread (artifact loads, no rebuild); replica adoption is a
// pointer swap per replica, so queries racing it are answered entirely
// by the old or the new monitor, never a blend.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/endpoint.hpp"
#include "serve/monitor_service.hpp"
#include "util/annotations.hpp"
#include "util/bounded_queue.hpp"

namespace ranm::serve {

struct ServerConfig {
  /// Unix-domain listener path; empty disables it.
  std::string unix_path;
  /// Enable the TCP listener (for off-host clients).
  bool tcp = false;
  /// TCP port; 0 binds a kernel-assigned ephemeral port, reported by
  /// Server::tcp_port() (how the tests avoid port collisions).
  std::uint16_t tcp_port = 0;
  /// Worker replicas executing queries. 0 = hardware concurrency; 1 runs
  /// inline in the event loop (no pool).
  std::size_t workers = 1;
  /// Bound on queued (accepted but not yet executing) queries; beyond it
  /// queries are answered kOverloaded. Ignored when workers == 1.
  std::size_t queue_capacity = 256;
};

class Server {
 public:
  /// Builds the serving fleet from `prototype`: each worker gets its own
  /// replica via MonitorService::clone() (bit-identical artifacts, fresh
  /// counters), so the caller keeps the prototype for direct use (or may
  /// drop it — the server never touches it after construction). Binds
  /// every configured listener before returning. Throws
  /// std::invalid_argument when no listener is configured,
  /// std::runtime_error on socket errors (including a Unix path a live
  /// daemon is already serving).
  Server(MonitorService& prototype, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the event loop until a drain (stop() or kShutdown) completes.
  /// Call at most once.
  void run();

  /// Requests a graceful drain; async-signal-safe (one eventfd write) and
  /// idempotent, so SIGINT/SIGTERM handlers call it directly.
  void stop() noexcept;

  [[nodiscard]] const std::string& unix_path() const noexcept {
    return config_.unix_path;
  }
  /// Bound TCP port (ephemeral binds resolved); 0 when TCP is disabled.
  [[nodiscard]] std::uint16_t tcp_port() const noexcept {
    return tcp_port_;
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return replicas_.size();
  }
  [[nodiscard]] std::uint64_t connections_served() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Aggregate + per-worker counters, as a kStats frame would report.
  /// Not synchronised with the event loop: call before run() or after it
  /// returned (clients use kStats for a live view).
  [[nodiscard]] ServiceStats stats() { return build_stats(); }

 private:
  struct Conn;
  struct Request {
    std::uint64_t conn_id = 0;
    FrameType type = FrameType::kQuery;  // kQuery or kObserve
    std::string payload;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    FrameType type = FrameType::kError;
    std::string payload;
    /// This completion ends the in-flight swap (clears swap_in_flight_
    /// even when its connection died mid-swap).
    bool swap_done = false;
  };

  /// Mutex-guarded stack of spare std::strings so request/reply payload
  /// buffers recycle between the loop and the workers instead of
  /// allocating per query.
  class BufferPool {
   public:
    [[nodiscard]] std::string acquire() RANM_EXCLUDES(mu_);
    void release(std::string&& buf) RANM_EXCLUDES(mu_);

   private:
    Mutex mu_;
    std::vector<std::string> spares_ RANM_GUARDED_BY(mu_);
  };

  void worker_main(std::size_t index);
  void event_loop();
  void handle_accept(std::size_t listener_index);
  void handle_conn_event(std::uint64_t conn_id, std::uint32_t events);
  /// Parses every complete frame the connection has buffered (stopping
  /// while a query is in flight) and dispatches/answers them.
  void parse_frames(Conn& conn);
  /// Dispatches a kQuery/kObserve frame: inline at one replica, through
  /// the bounded queue otherwise.
  void dispatch_request(Conn& conn, FrameType request, std::string_view payload);
  /// Starts the background rebuild+swap for one kSwap frame (or rejects
  /// it when a swap is already in flight).
  void handle_swap(Conn& conn);
  /// Swap-thread body: rebuild, adopt on every replica, commit, complete.
  void run_swap(std::uint64_t conn_id);
  /// Restores a persisted generation inline on the loop thread.
  void handle_rollback(Conn& conn, std::string_view payload);
  void handle_completions();
  /// Executes one kQuery/kObserve request against `service` into
  /// (type, payload); never throws — failures become kError replies and
  /// the worker (and connection) survive.
  void execute_request(MonitorService& service, FrameType request,
                       std::string_view payload, FrameType& type,
                       std::string& reply);
  [[nodiscard]] ServiceStats build_stats();
  void queue_reply(Conn& conn, FrameType type, std::string_view payload);
  /// Flushes conn.out as far as the socket accepts; false = peer gone.
  [[nodiscard]] bool flush_out(Conn& conn);
  void update_epoll(Conn& conn);
  void destroy_conn(std::uint64_t conn_id);
  void maybe_close(Conn& conn);
  void begin_drain();
  [[nodiscard]] bool drain_complete() const;

  ServerConfig config_;
  std::vector<std::unique_ptr<MonitorService>> replicas_;
  std::vector<Listener> listeners_;  // [0] unix (if any), then tcp
  std::size_t unix_listener_ = SIZE_MAX;
  std::size_t tcp_listener_ = SIZE_MAX;
  std::uint16_t tcp_port_ = 0;

  int epoll_fd_ = -1;
  int stop_event_fd_ = -1;
  int completion_event_fd_ = -1;

  BoundedQueue<Request> queue_;
  std::vector<std::thread> workers_;
  Mutex completions_mu_;
  /// Workers append, the loop swaps the whole vector out; the only shared
  /// mutable state between them besides the queue.
  std::vector<Completion> completions_ RANM_GUARDED_BY(completions_mu_);
  /// Loop-thread-only swap target: it crosses completions_mu_ exactly
  /// once per drain (inside the lock, via swap) and is otherwise private
  /// to the event loop, so it is deliberately not GUARDED_BY.
  std::vector<Completion> completion_scratch_;
  BufferPool buffers_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 16;  // ids below are loop-internal keys

  bool draining_ = false;
  /// A kSwap rebuild is running on swap_thread_. Loop-thread-only: set in
  /// handle_swap, cleared when the swap's completion is reaped.
  bool swap_in_flight_ = false;
  std::thread swap_thread_;
  /// One pass over all connections is owed at the event-loop level (the
  /// drain may begin deep inside parse_frames, where touching other
  /// connections — or re-entering this one — is unsafe).
  bool drain_sweep_pending_ = false;
  std::uint64_t in_flight_ = 0;    // dispatched to the pool, not yet done
  std::uint64_t overloaded_ = 0;   // queries rejected kOverloaded
  std::atomic<std::uint64_t> connections_{0};
};

}  // namespace ranm::serve
