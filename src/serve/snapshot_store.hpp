// Crash-consistent rotation of monitor snapshot generations.
//
// Every published swap persists the serialized monitor as
// `gen-NNNNNN.rmon` inside one store directory, via the classic
// write-temp + fsync + rename + fsync-directory sequence: a crash at any
// point leaves either the complete previous state or the complete new
// file, never a torn artifact. Stray `*.tmp` files (a crash between
// temp-write and rename) are ignored by every scan and removed by the
// next save, so reload always sees a consistent generation. Rotation
// keeps the newest `keep` generations and unlinks the rest — kRollback
// can restore any generation still on disk.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace ranm::serve {

class SnapshotStore {
 public:
  /// Creates the directory if missing. `keep` bounds rotation (>= 1).
  explicit SnapshotStore(std::filesystem::path dir, std::size_t keep = 8);

  /// Persists one generation crash-consistently, then prunes generations
  /// beyond the newest `keep` and any stray temp files. Throws
  /// std::runtime_error on I/O failure.
  void save(std::uint64_t generation, std::string_view bytes);

  /// Loads one generation's bytes; throws std::runtime_error when the
  /// generation is not on disk.
  [[nodiscard]] std::string load(std::uint64_t generation) const;

  /// Newest persisted generation, 0 when the store is empty.
  [[nodiscard]] std::uint64_t latest() const;

  /// All persisted generations, ascending. Ignores temp files.
  [[nodiscard]] std::vector<std::uint64_t> generations() const;

  [[nodiscard]] const std::filesystem::path& directory() const {
    return dir_;
  }
  [[nodiscard]] std::size_t keep() const { return keep_; }

  /// Artifact file name for one generation (`gen-NNNNNN.rmon`).
  [[nodiscard]] static std::string file_name(std::uint64_t generation);

 private:
  std::filesystem::path dir_;
  std::size_t keep_;
};

}  // namespace ranm::serve
