#include "serve/monitor_service.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "compile/compiled_monitor.hpp"
#include "core/sharded_monitor.hpp"
#include "io/serialize.hpp"
#include "util/timer.hpp"

namespace ranm::serve {
namespace {

/// Serialised bytes of any monitor with a serialiser.
std::string monitor_bytes(const Monitor& monitor) {
  std::ostringstream buf(std::ios::binary);
  save_any_monitor(buf, monitor);
  return std::move(buf).str();
}

std::unique_ptr<Monitor> monitor_from_bytes(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return load_any_monitor(in);
}

}  // namespace

MonitorService::MonitorService(Network net,
                               std::unique_ptr<Monitor> monitor,
                               std::size_t layer_k, std::size_t threads)
    : net_(std::move(net)),
      monitor_(std::move(monitor)),
      k_(layer_k),
      threads_(threads),
      builder_(net_, layer_k) {
  if (monitor_ == nullptr) {
    throw std::invalid_argument("MonitorService: null monitor");
  }
  dim_ = monitor_->dimension();
  if (dim_ != builder_.feature_dim()) {
    throw std::invalid_argument(
        "MonitorService: monitor dimension " + std::to_string(dim_) +
        " != layer " + std::to_string(layer_k) + " feature dimension " +
        std::to_string(builder_.feature_dim()));
  }
  apply_threads(*monitor_);
  // Seed the shared adaptation state with the pristine generation-1
  // bytes. Families without a serialiser — and compiled monitors, which
  // are frozen by design — run with adaptation disabled instead
  // (observe/swap/rollback throw a clear error, kStats reports
  // generation 0).
  if (dynamic_cast<const compile::CompiledMonitor*>(monitor_.get()) ==
      nullptr) {
    try {
      std::string bytes = monitor_bytes(*monitor_);
      std::size_t shard_count = 0;
      if (const auto* sharded =
              dynamic_cast<const ShardedMonitor*>(monitor_.get())) {
        shard_count = sharded->shard_count();
      }
      adapt_ = std::make_shared<AdaptState>(dim_, std::move(bytes),
                                            shard_count);
    } catch (const std::invalid_argument&) {
      adapt_.reset();
    }
  }
}

MonitorService MonitorService::from_files(const std::string& net_path,
                                          const std::string& monitor_path,
                                          std::size_t layer_k,
                                          std::size_t threads) {
  Network net = load_network_file(net_path);
  std::ifstream in(monitor_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("MonitorService: cannot open monitor " +
                             monitor_path);
  }
  return MonitorService(std::move(net), load_any_monitor(in), layer_k,
                        threads);
}

void MonitorService::apply_threads(Monitor& monitor) const {
  // Thread count is a host property, not part of the artifact — applied
  // after every load, exactly as `ranm_cli eval --threads` does.
  if (auto* sharded = dynamic_cast<ShardedMonitor*>(&monitor)) {
    sharded->set_threads(threads_);
  } else if (auto* compiled =
                 dynamic_cast<compile::CompiledMonitor*>(&monitor)) {
    compiled->set_threads(threads_);
  }
}

std::shared_ptr<Monitor> MonitorService::snapshot() const {
  MutexLock lock(snapshot_mu_);
  return monitor_;
}

std::unique_ptr<MonitorService> MonitorService::clone() {
  // Round-trip both artifacts through their serialisers: the same bytes a
  // deploy would ship, so a replica is bit-identical to loading the
  // artifacts fresh (the differential tests lean on this).
  std::stringstream net_buf(std::ios::in | std::ios::out |
                            std::ios::binary);
  save_network(net_buf, net_);
  net_buf.seekg(0);
  std::stringstream mon_buf(std::ios::in | std::ios::out |
                            std::ios::binary);
  save_any_monitor(mon_buf, *snapshot());
  mon_buf.seekg(0);
  auto replica = std::make_unique<MonitorService>(
      load_network(net_buf), load_any_monitor(mon_buf), k_, threads_);
  // All replicas share one AdaptState: one staging pool, one generation
  // counter, one store — a swap through any of them is the swap.
  replica->adapt_ = adapt_;
  return replica;
}

void MonitorService::query_warns_into(std::span<const Tensor> inputs,
                                      std::vector<std::uint8_t>& warns) {
  warns.clear();
  if (inputs.size() > kMaxQuerySamples) {
    throw std::invalid_argument("MonitorService: batch too large");
  }
  if (inputs.empty()) {
    queries_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // RCU read side: copy the snapshot pointer, then answer the whole
  // batch against that one monitor. A concurrent adopt() swaps the
  // pointer for the *next* query — never mid-batch.
  const std::shared_ptr<Monitor> snap = snapshot();
  const FeatureBatch batch = net_.forward_batch(k_, inputs);
  if (scratch_capacity_ < inputs.size()) {
    scratch_ = std::make_unique<bool[]>(inputs.size());
    scratch_capacity_ = inputs.size();
  }
  const std::span<bool> row(scratch_.get(), inputs.size());
  snap->warn_batch(batch, row);
  warns.resize(inputs.size());
  std::uint64_t warned = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    warns[i] = row[i] ? 1 : 0;
    warned += warns[i];
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  samples_.fetch_add(inputs.size(), std::memory_order_relaxed);
  warnings_.fetch_add(warned, std::memory_order_relaxed);
  record_rolling(inputs.size(), warned);
}

std::vector<std::uint8_t> MonitorService::query_warns(
    std::span<const Tensor> inputs) {
  std::vector<std::uint8_t> out;
  query_warns_into(inputs, out);
  return out;
}

bool MonitorService::adaptive() const noexcept {
  if (adapt_ == nullptr) return false;
  const std::shared_ptr<Monitor> snap = snapshot();
  return dynamic_cast<const compile::CompiledMonitor*>(snap.get()) ==
         nullptr;
}

ObserveReply MonitorService::observe_batch(std::span<const Tensor> inputs) {
  const std::shared_ptr<Monitor> snap = snapshot();
  if (dynamic_cast<const compile::CompiledMonitor*>(snap.get()) !=
      nullptr) {
    // Satellite bugfix: a frozen monitor must answer a structured error,
    // not let CompiledMonitor::observe's logic_error escape a worker.
    throw std::invalid_argument(
        "observe: compiled monitors are frozen — serve the source "
        "artifact to adapt online");
  }
  if (adapt_ == nullptr) {
    throw std::invalid_argument(
        "observe: this monitor family has no serialiser — online "
        "adaptation is disabled");
  }
  if (inputs.size() > kMaxQuerySamples) {
    throw std::invalid_argument("observe: batch too large");
  }
  ObserveReply reply;
  reply.accepted = inputs.size();
  if (inputs.empty()) {
    reply.staged_total = staged_samples();
    return reply;
  }
  const FeatureBatch batch = net_.forward_batch(k_, inputs);
  if (scratch_capacity_ < inputs.size()) {
    scratch_ = std::make_unique<bool[]>(inputs.size());
    scratch_capacity_ = inputs.size();
  }
  const std::span<bool> row(scratch_.get(), inputs.size());
  snap->warn_batch(batch, row);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    reply.novel += row[i] ? 1 : 0;
  }
  // Per-shard drift: project the batch onto each shard's neuron rows and
  // count the samples outside that shard's region — one view, no copies.
  std::vector<std::uint64_t> shard_novel;
  if (const auto* sharded =
          dynamic_cast<const ShardedMonitor*>(snap.get())) {
    shard_novel.assign(sharded->shard_count(), 0);
    for (std::size_t s = 0; s < sharded->shard_count(); ++s) {
      const FeatureBatch view =
          batch.view_rows(sharded->plan().neurons(s));
      sharded->shard(s).contains_batch(view, row);
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        shard_novel[s] += row[i] ? 0 : 1;
      }
    }
  }
  reply.staged_total = adapt_->stage(batch, shard_novel);
  return reply;
}

std::string MonitorService::rebuild_refreshed(std::uint64_t& applied) {
  if (adapt_ == nullptr) {
    throw std::invalid_argument(
        "swap: online adaptation is disabled for this monitor family");
  }
  const RebuildInput input = adapt_->rebuild_input();
  applied = input.staged_count;
  // A fresh monitor from the pristine bytes — not the live object — so
  // the rebuild shares nothing with the replicas still answering
  // queries, and a rollback of the result is exact.
  std::unique_ptr<Monitor> refreshed =
      monitor_from_bytes(input.base_artifact);
  if (input.staged_count > 0) {
    FeatureBatch staged(dim_, std::size_t(input.staged_count));
    for (std::size_t i = 0; i < std::size_t(input.staged_count); ++i) {
      staged.set_sample(
          i, std::span<const float>(input.features.data() + i * dim_,
                                    dim_));
    }
    refreshed->observe_batch(staged);
  }
  return monitor_bytes(*refreshed);
}

void MonitorService::adopt(const std::string& bytes) {
  std::shared_ptr<Monitor> next = monitor_from_bytes(bytes);
  if (next->dimension() != dim_) {
    throw std::invalid_argument(
        "adopt: artifact dimension " + std::to_string(next->dimension()) +
        " != served dimension " + std::to_string(dim_));
  }
  apply_threads(*next);
  MutexLock lock(snapshot_mu_);
  monitor_ = std::move(next);
}

SwapReply MonitorService::commit_swap(std::string bytes,
                                      std::uint64_t applied,
                                      std::uint64_t duration_us) {
  SwapReply reply;
  reply.generation = adapt_->commit_swap(std::move(bytes), applied);
  reply.staged_applied = applied;
  reply.duration_us = duration_us;
  reply.monitor = monitor_description();
  return reply;
}

std::pair<std::uint64_t, std::string> MonitorService::checkout_generation(
    std::uint64_t target) const {
  if (adapt_ == nullptr) {
    throw std::invalid_argument(
        "rollback: online adaptation is disabled for this monitor family");
  }
  return adapt_->checkout(target);
}

RollbackReply MonitorService::commit_rollback(std::uint64_t generation,
                                              std::string bytes) {
  adapt_->commit_rollback(generation, std::move(bytes));
  RollbackReply reply;
  reply.generation = generation;
  reply.monitor = monitor_description();
  return reply;
}

SwapReply MonitorService::swap() {
  Timer timer;
  std::uint64_t applied = 0;
  std::string bytes = rebuild_refreshed(applied);
  adopt(bytes);
  const auto duration_us =
      std::uint64_t(timer.millis() * 1000.0);
  return commit_swap(std::move(bytes), applied, duration_us);
}

RollbackReply MonitorService::rollback(std::uint64_t target) {
  auto [generation, bytes] = checkout_generation(target);
  adopt(bytes);
  return commit_rollback(generation, std::move(bytes));
}

std::uint64_t MonitorService::set_snapshot_store(
    std::unique_ptr<SnapshotStore> store) {
  if (adapt_ == nullptr) {
    throw std::invalid_argument(
        "snapshot store: online adaptation is disabled for this monitor "
        "family");
  }
  auto [resumed, bytes] = adapt_->attach_store(std::move(store));
  if (resumed != 0) adopt(bytes);
  return resumed;
}

void MonitorService::record_rolling(std::uint64_t samples,
                                    std::uint64_t warnings) {
  MutexLock lock(rolling_mu_);
  rolling_[rolling_next_] = {samples, warnings};
  rolling_next_ = (rolling_next_ + 1) % kRollingWindow;
  if (rolling_filled_ < kRollingWindow) ++rolling_filled_;
}

void MonitorService::rolling_counters(std::uint64_t& samples,
                                      std::uint64_t& warnings) const {
  MutexLock lock(rolling_mu_);
  for (std::size_t i = 0; i < rolling_filled_; ++i) {
    samples += rolling_[i].first;
    warnings += rolling_[i].second;
  }
}

std::uint64_t MonitorService::generation() const {
  return adapt_ ? adapt_->telemetry().generation : 0;
}

std::uint64_t MonitorService::staged_samples() const {
  return adapt_ ? adapt_->telemetry().staged_samples : 0;
}

std::string MonitorService::monitor_description() const {
  return snapshot()->describe();
}

ServiceStats MonitorService::stats() const {
  const std::shared_ptr<Monitor> snap = snapshot();
  ServiceStats stats;
  stats.monitor = snap->describe();
  stats.dimension = snap->dimension();
  stats.layer = k_;
  stats.threads = threads_;
  stats.queries = queries();
  stats.samples = samples();
  stats.warnings = warnings();
  rolling_counters(stats.rolling_samples, stats.rolling_warnings);
  AdaptTelemetry adapt;
  if (adapt_) {
    adapt = adapt_->telemetry();
    stats.generation = adapt.generation;
    stats.staged_samples = adapt.staged_samples;
    stats.swaps = adapt.swaps;
    stats.rollbacks = adapt.rollbacks;
  }
  if (const auto* sharded =
          dynamic_cast<const ShardedMonitor*>(snap.get())) {
    stats.threads = sharded->threads();
    stats.shard_strategy =
        std::string(shard_strategy_name(sharded->plan().strategy()));
    stats.shard_seed = sharded->plan().seed();
    std::size_t index = 0;
    for (const auto& s : sharded->shard_stats()) {
      ShardStatsWire wire;
      wire.neurons = s.neurons;
      wire.bdd_nodes = s.bdd_nodes;
      wire.cubes_inserted = s.cubes_inserted;
      if (index < adapt.shard_novel.size()) {
        wire.novel = adapt.shard_novel[index];
      }
      wire.patterns = s.patterns;
      stats.shards.push_back(wire);
      ++index;
    }
  }
  return stats;
}

}  // namespace ranm::serve
