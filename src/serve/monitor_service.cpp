#include "serve/monitor_service.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "compile/compiled_monitor.hpp"
#include "core/sharded_monitor.hpp"
#include "io/serialize.hpp"

namespace ranm::serve {

MonitorService::MonitorService(Network net,
                               std::unique_ptr<Monitor> monitor,
                               std::size_t layer_k, std::size_t threads)
    : net_(std::move(net)),
      monitor_(std::move(monitor)),
      k_(layer_k),
      threads_(threads),
      builder_(net_, layer_k) {
  if (monitor_ == nullptr) {
    throw std::invalid_argument("MonitorService: null monitor");
  }
  if (monitor_->dimension() != builder_.feature_dim()) {
    throw std::invalid_argument(
        "MonitorService: monitor dimension " +
        std::to_string(monitor_->dimension()) + " != layer " +
        std::to_string(layer_k) + " feature dimension " +
        std::to_string(builder_.feature_dim()));
  }
  // Thread count is a host property, not part of the artifact — applied
  // here, exactly as `ranm_cli eval --threads` does after loading.
  if (auto* sharded = dynamic_cast<ShardedMonitor*>(monitor_.get())) {
    sharded->set_threads(threads_);
  } else if (auto* compiled =
                 dynamic_cast<compile::CompiledMonitor*>(monitor_.get())) {
    compiled->set_threads(threads_);
  }
}

MonitorService MonitorService::from_files(const std::string& net_path,
                                          const std::string& monitor_path,
                                          std::size_t layer_k,
                                          std::size_t threads) {
  Network net = load_network_file(net_path);
  std::ifstream in(monitor_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("MonitorService: cannot open monitor " +
                             monitor_path);
  }
  return MonitorService(std::move(net), load_any_monitor(in), layer_k,
                        threads);
}

std::unique_ptr<MonitorService> MonitorService::clone() {
  // Round-trip both artifacts through their serialisers: the same bytes a
  // deploy would ship, so a replica is bit-identical to loading the
  // artifacts fresh (the differential tests lean on this).
  std::stringstream net_buf(std::ios::in | std::ios::out |
                            std::ios::binary);
  save_network(net_buf, net_);
  net_buf.seekg(0);
  std::stringstream mon_buf(std::ios::in | std::ios::out |
                            std::ios::binary);
  save_any_monitor(mon_buf, *monitor_);
  mon_buf.seekg(0);
  return std::make_unique<MonitorService>(
      load_network(net_buf), load_any_monitor(mon_buf), k_, threads_);
}

void MonitorService::query_warns_into(std::span<const Tensor> inputs,
                                      std::vector<std::uint8_t>& warns) {
  warns.clear();
  if (inputs.size() > kMaxQuerySamples) {
    throw std::invalid_argument("MonitorService: batch too large");
  }
  if (inputs.empty()) {
    queries_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const FeatureBatch batch = net_.forward_batch(k_, inputs);
  if (scratch_capacity_ < inputs.size()) {
    scratch_ = std::make_unique<bool[]>(inputs.size());
    scratch_capacity_ = inputs.size();
  }
  const std::span<bool> row(scratch_.get(), inputs.size());
  monitor_->warn_batch(batch, row);
  warns.resize(inputs.size());
  std::uint64_t warned = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    warns[i] = row[i] ? 1 : 0;
    warned += warns[i];
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  samples_.fetch_add(inputs.size(), std::memory_order_relaxed);
  warnings_.fetch_add(warned, std::memory_order_relaxed);
}

std::vector<std::uint8_t> MonitorService::query_warns(
    std::span<const Tensor> inputs) {
  std::vector<std::uint8_t> out;
  query_warns_into(inputs, out);
  return out;
}

ServiceStats MonitorService::stats() const {
  ServiceStats stats;
  stats.monitor = monitor_->describe();
  stats.dimension = monitor_->dimension();
  stats.layer = k_;
  stats.threads = threads_;
  stats.queries = queries();
  stats.samples = samples();
  stats.warnings = warnings();
  if (const auto* sharded =
          dynamic_cast<const ShardedMonitor*>(monitor_.get())) {
    stats.threads = sharded->threads();
    stats.shard_strategy =
        std::string(shard_strategy_name(sharded->plan().strategy()));
    stats.shard_seed = sharded->plan().seed();
    for (const auto& s : sharded->shard_stats()) {
      ShardStatsWire wire;
      wire.neurons = s.neurons;
      wire.bdd_nodes = s.bdd_nodes;
      wire.cubes_inserted = s.cubes_inserted;
      wire.patterns = s.patterns;
      stats.shards.push_back(wire);
    }
  }
  return stats;
}

}  // namespace ranm::serve
