#include "serve/monitor_service.hpp"

#include <fstream>
#include <stdexcept>

#include "compile/compiled_monitor.hpp"
#include "core/sharded_monitor.hpp"
#include "io/serialize.hpp"

namespace ranm::serve {

MonitorService::MonitorService(Network net,
                               std::unique_ptr<Monitor> monitor,
                               std::size_t layer_k, std::size_t threads)
    : net_(std::move(net)),
      monitor_(std::move(monitor)),
      k_(layer_k),
      threads_(threads),
      builder_(net_, layer_k) {
  if (monitor_ == nullptr) {
    throw std::invalid_argument("MonitorService: null monitor");
  }
  if (monitor_->dimension() != builder_.feature_dim()) {
    throw std::invalid_argument(
        "MonitorService: monitor dimension " +
        std::to_string(monitor_->dimension()) + " != layer " +
        std::to_string(layer_k) + " feature dimension " +
        std::to_string(builder_.feature_dim()));
  }
  // Thread count is a host property, not part of the artifact — applied
  // here, exactly as `ranm_cli eval --threads` does after loading.
  if (auto* sharded = dynamic_cast<ShardedMonitor*>(monitor_.get())) {
    sharded->set_threads(threads_);
  } else if (auto* compiled =
                 dynamic_cast<compile::CompiledMonitor*>(monitor_.get())) {
    compiled->set_threads(threads_);
  }
}

MonitorService MonitorService::from_files(const std::string& net_path,
                                          const std::string& monitor_path,
                                          std::size_t layer_k,
                                          std::size_t threads) {
  Network net = load_network_file(net_path);
  std::ifstream in(monitor_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("MonitorService: cannot open monitor " +
                             monitor_path);
  }
  return MonitorService(std::move(net), load_any_monitor(in), layer_k,
                        threads);
}

std::vector<std::uint8_t> MonitorService::query_warns(
    std::span<const Tensor> inputs) {
  if (inputs.size() > kMaxQuerySamples) {
    throw std::invalid_argument("MonitorService: batch too large");
  }
  if (inputs.empty()) {
    ++queries_;
    return {};
  }
  const FeatureBatch batch = net_.forward_batch(k_, inputs);
  if (scratch_capacity_ < inputs.size()) {
    scratch_ = std::make_unique<bool[]>(inputs.size());
    scratch_capacity_ = inputs.size();
  }
  const std::span<bool> warns(scratch_.get(), inputs.size());
  monitor_->warn_batch(batch, warns);
  std::vector<std::uint8_t> out(inputs.size());
  std::uint64_t warned = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out[i] = warns[i] ? 1 : 0;
    warned += out[i];
  }
  ++queries_;
  samples_ += inputs.size();
  warnings_ += warned;
  return out;
}

ServiceStats MonitorService::stats() const {
  ServiceStats stats;
  stats.monitor = monitor_->describe();
  stats.dimension = monitor_->dimension();
  stats.layer = k_;
  stats.threads = threads_;
  stats.queries = queries_;
  stats.samples = samples_;
  stats.warnings = warnings_;
  if (const auto* sharded =
          dynamic_cast<const ShardedMonitor*>(monitor_.get())) {
    stats.threads = sharded->threads();
    stats.shard_strategy =
        std::string(shard_strategy_name(sharded->plan().strategy()));
    stats.shard_seed = sharded->plan().seed();
    for (const auto& s : sharded->shard_stats()) {
      ShardStatsWire wire;
      wire.neurons = s.neurons;
      wire.bdd_nodes = s.bdd_nodes;
      wire.cubes_inserted = s.cubes_inserted;
      wire.patterns = s.patterns;
      stats.shards.push_back(wire);
    }
  }
  return stats;
}

}  // namespace ranm::serve
