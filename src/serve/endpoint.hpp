// Socket endpoint helpers shared by the server and the client: Unix-domain
// and TCP listeners/connectors plus the per-fd options the serving layer
// relies on (non-blocking mode, TCP_NODELAY, close-on-exec).
//
// Unix listeners keep the stale-file discipline the serving layer has
// always had: a socket file a live daemon is accepting on is refused, a
// leftover from a crashed run is replaced, and teardown unlinks only the
// file this process bound (matched by inode).
#pragma once

#include <cstdint>
#include <string>

namespace ranm::serve {

/// RAII listener. Move-only; closes the fd (and unlinks a Unix socket
/// file it created, inode-matched) on destruction.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// For TCP listeners: the bound port (after an ephemeral-port bind of
  /// port 0 this is the kernel-assigned port). 0 for Unix listeners.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Closes the fd early (and removes a Unix socket file this listener
  /// created). Idempotent.
  void close() noexcept;

 private:
  friend Listener listen_unix(const std::string& path);
  friend Listener listen_tcp(std::uint16_t port);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string unix_path_;  // empty for TCP
  unsigned long long bound_dev_ = 0;
  unsigned long long bound_ino_ = 0;
};

/// Binds and listens on a Unix-domain socket path, non-blocking. An
/// existing file with a live daemon behind it is refused
/// (std::runtime_error); a stale file is replaced. Throws
/// std::invalid_argument if the path is empty or exceeds the sockaddr_un
/// limit.
[[nodiscard]] Listener listen_unix(const std::string& path);

/// Binds and listens on 0.0.0.0:`port` (0 = kernel-assigned ephemeral
/// port, reported by Listener::port()), non-blocking, SO_REUSEADDR.
[[nodiscard]] Listener listen_tcp(std::uint16_t port);

/// Blocking connect to a Unix-domain socket. Returns the connected fd;
/// throws std::runtime_error when no daemon is listening.
[[nodiscard]] int connect_unix(const std::string& path);

/// Blocking connect to host:port over TCP (name resolution via
/// getaddrinfo); TCP_NODELAY is set on the result so request frames are
/// not Nagle-delayed.
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port);

/// Splits "host:port" (e.g. "127.0.0.1:7411", "localhost:7411"); throws
/// std::invalid_argument on a missing/invalid port.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};
[[nodiscard]] HostPort parse_host_port(const std::string& spec);

/// fcntl O_NONBLOCK on/off; throws std::runtime_error on failure.
void set_nonblocking(int fd, bool enable);

/// Best-effort TCP_NODELAY (no-op on non-TCP sockets): small frames must
/// not sit in Nagle buffers waiting for ACKs.
void set_tcp_nodelay(int fd) noexcept;

}  // namespace ranm::serve
