// Blocking frame transport over POSIX file descriptors (Unix-domain and
// TCP sockets) — the client side of the protocol.
//
// Shared by ServeClient, the tools, and the raw-socket tests so every
// reader validates headers through the same bounded decode_frame_header —
// the cap check runs before the payload buffer allocates, on every
// transport. (The server reads through its own nonblocking per-connection
// state machine in serve/server.cpp, built on the same header decoder.)
#pragma once

#include <string_view>

#include "serve/protocol.hpp"

namespace ranm::serve {

/// Outcome of one blocking frame read.
enum class FdReadStatus {
  kFrame,    // `out` holds one complete frame
  kEof,      // peer closed cleanly at a frame boundary
  kStopped,  // stop_fd became readable before a full frame
};

/// Reads one complete frame from `fd` into `out`, blocking in poll().
/// `out`'s payload buffer is reused across calls — capacity persists, so a
/// steady-state request loop pays no per-frame allocation. When `stop_fd`
/// >= 0, readability of that descriptor aborts the wait (a shutdown
/// path). Throws std::runtime_error on malformed headers, oversized
/// payloads, truncation mid-frame, or transport errors.
[[nodiscard]] FdReadStatus read_frame_fd(int fd, Frame& out,
                                         int stop_fd = -1);

/// Writes one complete frame, coalescing header + payload into a single
/// writev() so small requests cost one syscall (and, on TCP, one segment)
/// instead of two. Loops over partial sends; SIGPIPE is suppressed
/// (MSG_NOSIGNAL) so a vanished peer surfaces as std::runtime_error
/// instead of killing the daemon.
void write_frame_fd(int fd, FrameType type, std::string_view payload);

}  // namespace ranm::serve
