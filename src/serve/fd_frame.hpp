// Frame transport over POSIX file descriptors (Unix-domain sockets).
//
// Shared by SocketServer and ServeClient so both sides read headers
// through the same bounded decode_frame_header validation — the cap check
// runs before the payload buffer allocates, on every transport.
#pragma once

#include <optional>
#include <string_view>

#include "serve/protocol.hpp"

namespace ranm::serve {

/// Outcome of one blocking frame read.
struct FdFrameResult {
  bool eof = false;      // peer closed cleanly at a frame boundary
  bool stopped = false;  // stop_fd became readable before a full frame
  Frame frame;           // valid iff !eof && !stopped
};

/// Reads one complete frame from `fd`, blocking in poll(). When
/// `stop_fd` >= 0, readability of that descriptor aborts the wait (the
/// server's shutdown path). Throws std::runtime_error on malformed
/// headers, oversized payloads, truncation mid-frame, or transport
/// errors.
[[nodiscard]] FdFrameResult read_frame_fd(int fd, int stop_fd = -1);

/// Writes one complete frame (header + payload), looping over partial
/// sends; SIGPIPE is suppressed (MSG_NOSIGNAL) so a vanished peer surfaces
/// as std::runtime_error instead of killing the daemon.
void write_frame_fd(int fd, FrameType type, std::string_view payload);

}  // namespace ranm::serve
