// Unix-domain socket front end of the serving layer.
//
// Accepts one connection at a time and answers its frames against a
// MonitorService until the peer disconnects, then accepts the next —
// monitors (like the service) require serialised calls, so connection-
// level concurrency would buy nothing; within a query, a sharded
// monitor's thread pool already spreads the work across cores.
//
// Shutdown is driven through a self-pipe: stop() writes one byte, which
// every blocking poll() (accept wait and mid-connection reads) watches.
// write() is async-signal-safe, so stop() may be called directly from a
// SIGINT/SIGTERM handler — that is exactly what ranm_serve does.
#pragma once

#include <cstdint>
#include <string>

#include "serve/monitor_service.hpp"

namespace ranm::serve {

class SocketServer {
 public:
  /// Binds and listens on `socket_path` (an existing socket file is
  /// replaced). The service must outlive the server. Throws
  /// std::runtime_error on socket errors, std::invalid_argument if the
  /// path exceeds the sockaddr_un limit.
  SocketServer(MonitorService& service, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Serves until stop() is called or a client sends kShutdown. Safe to
  /// call once per server instance.
  void run();

  /// Requests a graceful stop; async-signal-safe (one write() on the
  /// self-pipe). Idempotent.
  void stop() noexcept;

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::uint64_t connections_served() const noexcept {
    return connections_;
  }

 private:
  /// Blocks until a client connects or stop fires; returns -1 on stop.
  [[nodiscard]] int accept_connection();
  /// Serves one connection; returns false when a kShutdown frame asked
  /// the whole server to stop.
  [[nodiscard]] bool serve_connection(int fd);

  MonitorService& service_;
  std::string path_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  // [read, write]
  std::uint64_t connections_ = 0;
  // Identity of the socket file this server created (st_dev/st_ino), so
  // teardown never unlinks a file a later process bound at the path.
  unsigned long long bound_dev_ = 0;
  unsigned long long bound_ino_ = 0;
};

}  // namespace ranm::serve
