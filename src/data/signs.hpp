// Synthetic traffic-sign classification workload (GTSRB analogue —
// the paper cites GTSRB as a standard benchmark for prior
// activation-monitoring work).
//
// 24x24 grayscale renderings of eight sign classes built from an outer
// shape (circle / triangle / inverted triangle / octagon) and an inner
// glyph (bar / dot / chevron / blank), with positional jitter, scale and
// illumination variation. Out-of-distribution variants: an unseen shape
// (diamond), graffiti occlusion, and motion blur.
#pragma once

#include <string_view>

#include "data/dataset.hpp"

namespace ranm {

/// In-distribution signs vs three OOD variants.
enum class SignVariant {
  kNominal,   // the eight training classes
  kUnseen,    // diamond-shaped signs (shape never trained on)
  kGraffiti,  // nominal signs with paint blotches
  kBlurred,   // nominal signs under motion blur
};

[[nodiscard]] std::string_view sign_variant_name(
    SignVariant variant) noexcept;

/// Number of in-distribution classes.
inline constexpr std::size_t kNumSignClasses = 8;

/// Generator configuration; images have shape {1, size, size}.
struct SignConfig {
  std::size_t size = 24;
  float illumination_jitter = 0.2F;  // multiplicative gain ~ U(1-j, 1+j)
  float noise = 0.02F;               // additive Gaussian
  int max_shift = 2;                 // centre jitter in pixels
  float min_radius = 7.0F;           // sign radius range in pixels
  float max_radius = 9.0F;
};

/// Renders one sign; `label` receives the class (0..7) for kNominal /
/// kGraffiti / kBlurred, or 0 for kUnseen (no trained class applies).
[[nodiscard]] Tensor render_sign(const SignConfig& cfg, SignVariant variant,
                                 Rng& rng, std::size_t* label = nullptr);

/// Generates n labelled samples (targets are 1-element class tensors).
[[nodiscard]] Dataset make_sign_dataset(const SignConfig& cfg,
                                        SignVariant variant, std::size_t n,
                                        Rng& rng);

}  // namespace ranm
