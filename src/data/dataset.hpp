// Dataset container shared by the generators, the trainer, and the
// evaluation harness.
#pragma once

#include <utility>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ranm {

/// Paired inputs and targets. Targets may be regression vectors or class
/// indices stored as 1-element tensors.
struct Dataset {
  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;

  [[nodiscard]] std::size_t size() const noexcept { return inputs.size(); }
  [[nodiscard]] bool empty() const noexcept { return inputs.empty(); }

  /// Appends another dataset's samples.
  void append(const Dataset& other);
  /// In-place random permutation of sample order.
  void shuffle(Rng& rng);
  /// Splits into (first, second) where first receives round(frac * size)
  /// samples. frac must be in [0, 1].
  [[nodiscard]] std::pair<Dataset, Dataset> split(double frac) const;
  /// A copy of the first n samples (n clamped to size).
  [[nodiscard]] Dataset take(std::size_t n) const;
};

}  // namespace ranm
