#include "data/dataset.hpp"

#include <stdexcept>

namespace ranm {

void Dataset::append(const Dataset& other) {
  inputs.insert(inputs.end(), other.inputs.begin(), other.inputs.end());
  targets.insert(targets.end(), other.targets.begin(), other.targets.end());
}

void Dataset::shuffle(Rng& rng) {
  if (inputs.size() != targets.size()) {
    throw std::logic_error("Dataset::shuffle: inputs/targets out of sync");
  }
  const auto perm = rng.permutation(inputs.size());
  std::vector<Tensor> in(inputs.size()), tg(targets.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    in[i] = std::move(inputs[perm[i]]);
    tg[i] = std::move(targets[perm[i]]);
  }
  inputs = std::move(in);
  targets = std::move(tg);
}

std::pair<Dataset, Dataset> Dataset::split(double frac) const {
  if (frac < 0.0 || frac > 1.0) {
    throw std::invalid_argument("Dataset::split: frac out of [0, 1]");
  }
  const auto cut = static_cast<std::size_t>(frac * double(size()) + 0.5);
  Dataset first, second;
  for (std::size_t i = 0; i < size(); ++i) {
    Dataset& dst = i < cut ? first : second;
    dst.inputs.push_back(inputs[i]);
    dst.targets.push_back(targets[i]);
  }
  return {std::move(first), std::move(second)};
}

Dataset Dataset::take(std::size_t n) const {
  Dataset out;
  const std::size_t m = std::min(n, size());
  out.inputs.assign(inputs.begin(), inputs.begin() + m);
  out.targets.assign(targets.begin(), targets.begin() + m);
  return out;
}

}  // namespace ranm
