// Synthetic seven-segment digit classification workload.
//
// The prior activation-monitoring papers evaluate on MNIST/GTSRB; we
// provide a self-contained classification analogue: 16x16 renderings of
// seven-segment digits 0-9 with positional jitter, stroke-thickness and
// intensity variation, plus noise. Out-of-distribution variants (letters,
// inverted video, heavy noise) exercise the monitors on a classification
// network.
#pragma once

#include <string_view>

#include "data/dataset.hpp"

namespace ranm {

/// In-distribution digits vs. three OOD variants.
enum class DigitVariant {
  kNominal,   // digits 0-9
  kLetters,   // seven-segment letters A,C,E,F,H,J,L,P,U (unseen classes)
  kInverted,  // digits with inverted video
  kNoisy,     // digits under heavy pixel noise
};

[[nodiscard]] std::string_view digit_variant_name(
    DigitVariant variant) noexcept;

/// Generator configuration; images have shape {1, size, size}.
struct DigitConfig {
  std::size_t size = 16;
  float intensity_jitter = 0.15F;  // stroke brightness ~ U(1-j, 1+j) * 0.9
  float noise = 0.03F;             // nominal additive Gaussian noise
  float heavy_noise = 0.35F;       // used by kNoisy
  int max_shift = 2;               // positional jitter in pixels
};

/// Renders one glyph. For kNominal/kInverted/kNoisy, `label` receives the
/// digit class 0-9; for kLetters it receives the letter index (0-based,
/// not a digit class).
[[nodiscard]] Tensor render_digit(const DigitConfig& cfg,
                                  DigitVariant variant, Rng& rng,
                                  std::size_t* label = nullptr);

/// Generates n labelled samples (targets are 1-element class tensors).
[[nodiscard]] Dataset make_digit_dataset(const DigitConfig& cfg,
                                         DigitVariant variant, std::size_t n,
                                         Rng& rng);

}  // namespace ranm
