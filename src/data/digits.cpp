#include "data/digits.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace ranm {

std::string_view digit_variant_name(DigitVariant variant) noexcept {
  switch (variant) {
    case DigitVariant::kNominal:
      return "digits";
    case DigitVariant::kLetters:
      return "letters";
    case DigitVariant::kInverted:
      return "inverted";
    case DigitVariant::kNoisy:
      return "heavy-noise";
  }
  return "?";
}

namespace {

// Segment bitmasks: bit 0..6 = A (top), B (top-right), C (bottom-right),
// D (bottom), E (bottom-left), F (top-left), G (middle).
constexpr std::array<std::uint8_t, 10> kDigitSegments = {
    0b0111111,  // 0
    0b0000110,  // 1
    0b1011011,  // 2
    0b1001111,  // 3
    0b1100110,  // 4
    0b1101101,  // 5
    0b1111101,  // 6
    0b0000111,  // 7
    0b1111111,  // 8
    0b1101111,  // 9
};

// Letters renderable on seven segments: A C E F H J L P U.
constexpr std::array<std::uint8_t, 9> kLetterSegments = {
    0b1110111,  // A
    0b0111001,  // C
    0b1111001,  // E
    0b1110001,  // F
    0b1110110,  // H
    0b0011110,  // J
    0b0111000,  // L
    0b1110011,  // P
    0b0111110,  // U
};

float clamp01(float v) noexcept { return std::clamp(v, 0.0F, 1.0F); }

/// Draws one segment as a filled rectangle in glyph-local coordinates.
/// The glyph occupies a (gh x gw) box; thickness t.
void draw_segment(Tensor& img, int seg, int top, int left, int gh, int gw,
                  int t, float intensity) {
  const std::size_t h = img.dim(1), w = img.dim(2);
  auto fill = [&](int y0, int y1, int x0, int x1) {
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        if (y < 0 || x < 0 || y >= int(h) || x >= int(w)) continue;
        img(0, std::size_t(y), std::size_t(x)) = intensity;
      }
    }
  };
  const int mid = top + gh / 2;
  switch (seg) {
    case 0:  // A: top bar
      fill(top, top + t, left + t, left + gw - t);
      break;
    case 1:  // B: top-right column
      fill(top + t, mid, left + gw - t, left + gw);
      break;
    case 2:  // C: bottom-right column
      fill(mid + t, top + gh - t, left + gw - t, left + gw);
      break;
    case 3:  // D: bottom bar
      fill(top + gh - t, top + gh, left + t, left + gw - t);
      break;
    case 4:  // E: bottom-left column
      fill(mid + t, top + gh - t, left, left + t);
      break;
    case 5:  // F: top-left column
      fill(top + t, mid, left, left + t);
      break;
    case 6:  // G: middle bar
      fill(mid, mid + t, left + t, left + gw - t);
      break;
    default:
      throw std::logic_error("draw_segment: bad segment index");
  }
}

}  // namespace

Tensor render_digit(const DigitConfig& cfg, DigitVariant variant, Rng& rng,
                    std::size_t* label) {
  if (cfg.size < 12) {
    throw std::invalid_argument("render_digit: size must be >= 12");
  }
  const std::size_t s = cfg.size;
  Tensor img({1, s, s}, 0.05F);

  std::uint8_t mask;
  std::size_t cls;
  if (variant == DigitVariant::kLetters) {
    cls = rng.below(kLetterSegments.size());
    mask = kLetterSegments[cls];
  } else {
    cls = rng.below(10);
    mask = kDigitSegments[cls];
  }
  if (label) *label = cls;

  const int gh = int(s) - 6;
  const int gw = int(s) / 2;
  const int shift_y = int(rng.between(-cfg.max_shift, cfg.max_shift));
  const int shift_x = int(rng.between(-cfg.max_shift, cfg.max_shift));
  const int top = 3 + shift_y;
  const int left = int(s) / 4 + shift_x;
  const int thickness = 1 + int(rng.below(2));
  const float intensity =
      0.9F * rng.uniform_f(1.0F - cfg.intensity_jitter,
                           1.0F + cfg.intensity_jitter);

  for (int seg = 0; seg < 7; ++seg) {
    if (mask & (1U << seg)) {
      draw_segment(img, seg, top, left, gh, gw, thickness, intensity);
    }
  }

  const float noise =
      variant == DigitVariant::kNoisy ? cfg.heavy_noise : cfg.noise;
  for (std::size_t i = 0; i < img.numel(); ++i) {
    float v = img[i] + static_cast<float>(rng.normal(0.0, noise));
    if (variant == DigitVariant::kInverted) v = 1.0F - v;
    img[i] = clamp01(v);
  }
  return img;
}

Dataset make_digit_dataset(const DigitConfig& cfg, DigitVariant variant,
                           std::size_t n, Rng& rng) {
  Dataset ds;
  ds.inputs.reserve(n);
  ds.targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t label = 0;
    ds.inputs.push_back(render_digit(cfg, variant, rng, &label));
    Tensor t({1});
    t[0] = static_cast<float>(label);
    ds.targets.push_back(std::move(t));
  }
  return ds;
}

}  // namespace ranm
