// Synthetic race-track scene generator.
//
// The paper's evaluation deploys a DNN that "generates visual waypoints
// from images" on a physical race track and tests the monitor against
// out-of-ODD scenarios (dark conditions, construction site, ice on the
// track — Fig. 2). We reproduce that setting synthetically: a top-down
// grayscale rendering of a curved two-boundary track with a regression
// target (the waypoint: normalised lane-centre coordinates at a lookahead
// row). In-ODD aleatory variation — lighting jitter and sensor noise, the
// very effects the paper says cause false alarms — is part of the nominal
// distribution. Out-of-ODD scenarios are controlled transforms that move
// inputs off the training manifold.
#pragma once

#include <string_view>

#include "data/dataset.hpp"

namespace ranm {

/// Scene variants. kNominal is the ODD; the rest are the paper's departure
/// scenarios (fog and night are extra).
enum class TrackScenario {
  kNominal,
  kDark,          // severe lighting drop (paper: "dark conditions")
  kConstruction,  // bright clutter blocks on/near the track
  kIce,           // white patches and speckle on the asphalt
  kFog,           // blur + contrast loss
  kNight,         // near-black with a headlight cone
};

[[nodiscard]] std::string_view track_scenario_name(
    TrackScenario scenario) noexcept;

/// All departure scenarios (everything but kNominal).
[[nodiscard]] const std::vector<TrackScenario>& track_departure_scenarios();

/// Generator configuration. Defaults give a 1x32x32 image and a 2-D
/// waypoint target in [-1, 1]^2.
struct RacetrackConfig {
  std::size_t height = 32;
  std::size_t width = 32;
  float lane_half_width = 4.0F;   // pixels from centre to each boundary
  float max_curvature = 0.9F;     // lateral pixels-per-row^2 scale
  float max_offset = 4.0F;        // lateral lane offset in pixels
  float lighting_jitter = 0.15F;  // multiplicative gain ~ U(1-j, 1+j)
  float sensor_noise = 0.02F;     // additive Gaussian, per pixel
  double lookahead = 0.8;         // waypoint row as fraction of height
};

/// Renders one scene and returns the image (shape {1, H, W}); `waypoint`
/// receives the 2-D target.
[[nodiscard]] Tensor render_track(const RacetrackConfig& cfg,
                                  TrackScenario scenario, Rng& rng,
                                  Tensor* waypoint = nullptr);

/// Generates n samples of one scenario.
[[nodiscard]] Dataset make_track_dataset(const RacetrackConfig& cfg,
                                         TrackScenario scenario,
                                         std::size_t n, Rng& rng);

}  // namespace ranm
