// Input perturbations used to stress monitors and to validate robustness
// claims: bounded noise (the Δ of Definition 1 when kp = 0), photometric
// changes, occlusion, and blur.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ranm {

/// Adds i.i.d. uniform noise in [-delta, +delta] to every element
/// (an L-infinity perturbation of radius delta). No clamping, so the
/// perturbed input stays within the Δ-ball — required when checking
/// Lemma 1 exactly.
[[nodiscard]] Tensor perturb_linf(const Tensor& t, float delta, Rng& rng);

/// Worst-case corner of the L-infinity ball: each element moves by
/// +delta or -delta (randomly signed).
[[nodiscard]] Tensor perturb_linf_corner(const Tensor& t, float delta,
                                         Rng& rng);

/// Multiplies all elements by `factor` and clamps to [0, 1].
[[nodiscard]] Tensor perturb_brightness(const Tensor& t, float factor);

/// Linear contrast change around 0.5, clamped to [0, 1].
[[nodiscard]] Tensor perturb_contrast(const Tensor& t, float factor);

/// Adds Gaussian noise with the given stddev, clamped to [0, 1].
[[nodiscard]] Tensor perturb_gaussian(const Tensor& t, float stddev,
                                      Rng& rng);

/// Sets a random (size x size) patch of a CHW image to `value`.
[[nodiscard]] Tensor perturb_occlude(const Tensor& t, std::size_t size,
                                     float value, Rng& rng);

/// 3x3 box blur on a CHW image.
[[nodiscard]] Tensor perturb_blur(const Tensor& t);

}  // namespace ranm
