#include "data/racetrack.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ranm {

std::string_view track_scenario_name(TrackScenario scenario) noexcept {
  switch (scenario) {
    case TrackScenario::kNominal:
      return "nominal";
    case TrackScenario::kDark:
      return "dark";
    case TrackScenario::kConstruction:
      return "construction";
    case TrackScenario::kIce:
      return "ice";
    case TrackScenario::kFog:
      return "fog";
    case TrackScenario::kNight:
      return "night";
  }
  return "?";
}

const std::vector<TrackScenario>& track_departure_scenarios() {
  static const std::vector<TrackScenario> kAll = {
      TrackScenario::kDark, TrackScenario::kConstruction,
      TrackScenario::kIce, TrackScenario::kFog, TrackScenario::kNight};
  return kAll;
}

namespace {

float clamp01(float v) noexcept { return std::clamp(v, 0.0F, 1.0F); }

/// Lane-centre column (in pixels) at a given row. Row 0 is the bottom of
/// the image (vehicle position); the track curves away with depth.
float lane_center(const RacetrackConfig& cfg, float curvature, float offset,
                  std::size_t row_from_bottom) {
  const float t =
      static_cast<float>(row_from_bottom) / static_cast<float>(cfg.height);
  return 0.5F * static_cast<float>(cfg.width) + offset +
         curvature * t * t * static_cast<float>(cfg.width) * 0.5F;
}

}  // namespace

Tensor render_track(const RacetrackConfig& cfg, TrackScenario scenario,
                    Rng& rng, Tensor* waypoint) {
  if (cfg.height < 8 || cfg.width < 8) {
    throw std::invalid_argument("render_track: image too small");
  }
  const std::size_t h = cfg.height, w = cfg.width;
  Tensor img({1, h, w});

  const float curvature = rng.uniform_f(-cfg.max_curvature, cfg.max_curvature);
  const float offset = rng.uniform_f(-cfg.max_offset, cfg.max_offset);
  const float gain =
      rng.uniform_f(1.0F - cfg.lighting_jitter, 1.0F + cfg.lighting_jitter);

  // Base scene: grass, asphalt between boundaries, bright lane markings.
  for (std::size_t row = 0; row < h; ++row) {
    const std::size_t from_bottom = h - 1 - row;
    const float cx = lane_center(cfg, curvature, offset, from_bottom);
    const float left = cx - cfg.lane_half_width;
    const float right = cx + cfg.lane_half_width;
    for (std::size_t col = 0; col < w; ++col) {
      const auto x = static_cast<float>(col);
      float v;
      if (std::fabs(x - left) <= 0.6F || std::fabs(x - right) <= 0.6F) {
        v = 0.9F;  // lane boundary marking
      } else if (x > left && x < right) {
        v = 0.45F;  // asphalt
      } else {
        v = 0.2F;  // off-track
      }
      img(0, row, col) = v;
    }
  }

  // Waypoint: normalised lane-centre position at the lookahead row.
  if (waypoint) {
    const auto look_row =
        static_cast<std::size_t>(cfg.lookahead * double(h - 1));
    const float cx = lane_center(cfg, curvature, offset, look_row);
    *waypoint = Tensor({2});
    (*waypoint)[0] = 2.0F * cx / static_cast<float>(w) - 1.0F;
    (*waypoint)[1] = 2.0F * static_cast<float>(look_row) /
                         static_cast<float>(h) -
                     1.0F;
  }

  // Scenario transforms applied before nominal lighting/noise.
  switch (scenario) {
    case TrackScenario::kNominal:
      break;
    case TrackScenario::kDark:
      for (std::size_t i = 0; i < img.numel(); ++i) img[i] *= 0.25F;
      break;
    case TrackScenario::kConstruction: {
      const int blocks = static_cast<int>(rng.between(2, 4));
      for (int b = 0; b < blocks; ++b) {
        const std::size_t by = rng.below(h - 4);
        const std::size_t bx = rng.below(w - 4);
        const std::size_t bh = 3 + rng.below(3);
        const std::size_t bw = 3 + rng.below(3);
        for (std::size_t y = by; y < std::min(h, by + bh); ++y) {
          for (std::size_t x = bx; x < std::min(w, bx + bw); ++x) {
            // Orange-striped barrier rendered as alternating bright rows.
            img(0, y, x) = (y % 2 == 0) ? 0.95F : 0.75F;
          }
        }
      }
      break;
    }
    case TrackScenario::kIce: {
      const int patches = static_cast<int>(rng.between(3, 6));
      for (int p = 0; p < patches; ++p) {
        const std::size_t cy = rng.below(h);
        const std::size_t cx2 = rng.below(w);
        const float r = 1.5F + rng.uniform_f(0.0F, 2.5F);
        for (std::size_t y = 0; y < h; ++y) {
          for (std::size_t x = 0; x < w; ++x) {
            const float dy = static_cast<float>(y) - static_cast<float>(cy);
            const float dx = static_cast<float>(x) - static_cast<float>(cx2);
            if (dy * dy + dx * dx <= r * r) img(0, y, x) = 0.97F;
          }
        }
      }
      // Speckle glare.
      for (std::size_t i = 0; i < img.numel(); ++i) {
        if (rng.chance(0.03)) img[i] = 1.0F;
      }
      break;
    }
    case TrackScenario::kFog: {
      // 3x3 box blur followed by contrast compression toward white.
      Tensor blurred = img;
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          float acc = 0.0F;
          int cnt = 0;
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const auto yy = static_cast<std::ptrdiff_t>(y) + dy;
              const auto xx = static_cast<std::ptrdiff_t>(x) + dx;
              if (yy < 0 || xx < 0 || yy >= std::ptrdiff_t(h) ||
                  xx >= std::ptrdiff_t(w)) {
                continue;
              }
              acc += img(0, std::size_t(yy), std::size_t(xx));
              ++cnt;
            }
          }
          blurred(0, y, x) = acc / static_cast<float>(cnt);
        }
      }
      for (std::size_t i = 0; i < img.numel(); ++i) {
        img[i] = 0.55F + 0.45F * blurred[i];
      }
      break;
    }
    case TrackScenario::kNight: {
      // Near-black scene with a headlight cone from the bottom centre.
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          const float dy = static_cast<float>(h - 1 - y);
          const float dx =
              std::fabs(static_cast<float>(x) - 0.5F * static_cast<float>(w));
          const float cone =
              dx <= 0.25F * dy + 2.0F ? std::exp(-dy / (0.5F * float(h))) : 0.0F;
          img(0, y, x) *= 0.05F + 0.75F * cone;
        }
      }
      break;
    }
  }

  // Nominal aleatory variation: lighting gain + sensor noise.
  for (std::size_t i = 0; i < img.numel(); ++i) {
    const float noisy =
        img[i] * gain +
        static_cast<float>(rng.normal(0.0, cfg.sensor_noise));
    img[i] = clamp01(noisy);
  }
  return img;
}

Dataset make_track_dataset(const RacetrackConfig& cfg,
                           TrackScenario scenario, std::size_t n, Rng& rng) {
  Dataset ds;
  ds.inputs.reserve(n);
  ds.targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor waypoint;
    ds.inputs.push_back(render_track(cfg, scenario, rng, &waypoint));
    ds.targets.push_back(std::move(waypoint));
  }
  return ds;
}

}  // namespace ranm
