#include "data/signs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ranm {

std::string_view sign_variant_name(SignVariant variant) noexcept {
  switch (variant) {
    case SignVariant::kNominal:
      return "signs";
    case SignVariant::kUnseen:
      return "unseen-shape";
    case SignVariant::kGraffiti:
      return "graffiti";
    case SignVariant::kBlurred:
      return "blurred";
  }
  return "?";
}

namespace {

enum class Shape2D { kCircle, kTriangle, kInvTriangle, kOctagon, kDiamond };
enum class Glyph { kBar, kDot, kChevron, kBlank };

float clamp01(float v) noexcept { return std::clamp(v, 0.0F, 1.0F); }

/// Signed membership test of point (dx, dy) relative to the sign centre,
/// for a sign of radius r.
bool inside_shape(Shape2D shape, float dx, float dy, float r) {
  switch (shape) {
    case Shape2D::kCircle:
      return dx * dx + dy * dy <= r * r;
    case Shape2D::kTriangle:
      // Upward triangle: apex at (0, -r), base at y = +r * 0.6.
      return dy <= 0.6F * r && dy >= -r &&
             std::fabs(dx) <= 0.75F * (dy + r) * 0.75F;
    case Shape2D::kInvTriangle:
      return dy >= -0.6F * r && dy <= r &&
             std::fabs(dx) <= 0.75F * (r - dy) * 0.75F;
    case Shape2D::kOctagon:
      return std::fabs(dx) <= r && std::fabs(dy) <= r &&
             std::fabs(dx) + std::fabs(dy) <= 1.4F * r;
    case Shape2D::kDiamond:
      return std::fabs(dx) + std::fabs(dy) <= r;
  }
  return false;
}

bool inside_glyph(Glyph glyph, float dx, float dy, float r) {
  switch (glyph) {
    case Glyph::kBar:
      return std::fabs(dy) <= 0.18F * r && std::fabs(dx) <= 0.55F * r;
    case Glyph::kDot:
      return dx * dx + dy * dy <= (0.3F * r) * (0.3F * r);
    case Glyph::kChevron:
      return std::fabs(dy - std::fabs(dx) * 0.6F + 0.2F * r) <= 0.15F * r &&
             std::fabs(dx) <= 0.6F * r;
    case Glyph::kBlank:
      return false;
  }
  return false;
}

/// The eight nominal classes: (shape, glyph) combinations.
struct ClassSpec {
  Shape2D shape;
  Glyph glyph;
};
constexpr ClassSpec kClasses[kNumSignClasses] = {
    {Shape2D::kCircle, Glyph::kBar},       // 0: no-entry style
    {Shape2D::kCircle, Glyph::kDot},       // 1
    {Shape2D::kCircle, Glyph::kBlank},     // 2
    {Shape2D::kTriangle, Glyph::kChevron}, // 3: warning
    {Shape2D::kTriangle, Glyph::kDot},     // 4
    {Shape2D::kInvTriangle, Glyph::kBlank},// 5: yield
    {Shape2D::kOctagon, Glyph::kBar},      // 6: stop
    {Shape2D::kOctagon, Glyph::kBlank},    // 7
};

}  // namespace

Tensor render_sign(const SignConfig& cfg, SignVariant variant, Rng& rng,
                   std::size_t* label) {
  if (cfg.size < 16) {
    throw std::invalid_argument("render_sign: size must be >= 16");
  }
  const std::size_t s = cfg.size;
  Tensor img({1, s, s}, 0.35F);  // street background

  Shape2D shape;
  Glyph glyph;
  std::size_t cls = 0;
  if (variant == SignVariant::kUnseen) {
    shape = Shape2D::kDiamond;
    glyph = static_cast<Glyph>(rng.below(3));
  } else {
    cls = rng.below(kNumSignClasses);
    shape = kClasses[cls].shape;
    glyph = kClasses[cls].glyph;
  }
  if (label) *label = cls;

  const float r = rng.uniform_f(cfg.min_radius, cfg.max_radius);
  const float cx = 0.5F * float(s) +
                   float(rng.between(-cfg.max_shift, cfg.max_shift));
  const float cy = 0.5F * float(s) +
                   float(rng.between(-cfg.max_shift, cfg.max_shift));

  for (std::size_t y = 0; y < s; ++y) {
    for (std::size_t x = 0; x < s; ++x) {
      const float dx = float(x) - cx;
      const float dy = float(y) - cy;
      if (!inside_shape(shape, dx, dy, r)) continue;
      // Rim (outer 18% of the radius scale) dark, face bright, glyph dark.
      const bool rim = !inside_shape(shape, dx * 1.22F, dy * 1.22F, r);
      if (rim) {
        img(0, y, x) = 0.85F;
      } else if (inside_glyph(glyph, dx, dy, r)) {
        img(0, y, x) = 0.1F;
      } else {
        img(0, y, x) = 0.7F;
      }
    }
  }

  if (variant == SignVariant::kGraffiti) {
    const int blobs = int(rng.between(2, 4));
    for (int b = 0; b < blobs; ++b) {
      const float gx = cx + rng.uniform_f(-r, r);
      const float gy = cy + rng.uniform_f(-r, r);
      const float gr = rng.uniform_f(1.5F, 3.0F);
      for (std::size_t y = 0; y < s; ++y) {
        for (std::size_t x = 0; x < s; ++x) {
          const float dx = float(x) - gx;
          const float dy = float(y) - gy;
          if (dx * dx + dy * dy <= gr * gr) img(0, y, x) = 0.02F;
        }
      }
    }
  }

  if (variant == SignVariant::kBlurred) {
    // Horizontal motion blur over 5 taps.
    Tensor blurred = img;
    for (std::size_t y = 0; y < s; ++y) {
      for (std::size_t x = 0; x < s; ++x) {
        float acc = 0.0F;
        int cnt = 0;
        for (int d = -2; d <= 2; ++d) {
          const auto xx = std::ptrdiff_t(x) + d;
          if (xx < 0 || xx >= std::ptrdiff_t(s)) continue;
          acc += img(0, y, std::size_t(xx));
          ++cnt;
        }
        blurred(0, y, x) = acc / float(cnt);
      }
    }
    img = blurred;
  }

  const float gain = rng.uniform_f(1.0F - cfg.illumination_jitter,
                                   1.0F + cfg.illumination_jitter);
  for (std::size_t i = 0; i < img.numel(); ++i) {
    img[i] = clamp01(img[i] * gain +
                     static_cast<float>(rng.normal(0.0, cfg.noise)));
  }
  return img;
}

Dataset make_sign_dataset(const SignConfig& cfg, SignVariant variant,
                          std::size_t n, Rng& rng) {
  Dataset ds;
  ds.inputs.reserve(n);
  ds.targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t label = 0;
    ds.inputs.push_back(render_sign(cfg, variant, rng, &label));
    Tensor t({1});
    t[0] = static_cast<float>(label);
    ds.targets.push_back(std::move(t));
  }
  return ds;
}

}  // namespace ranm
