#include "data/perturb.hpp"

#include <algorithm>
#include <stdexcept>

namespace ranm {
namespace {
float clamp01(float v) noexcept { return std::clamp(v, 0.0F, 1.0F); }
}  // namespace

Tensor perturb_linf(const Tensor& t, float delta, Rng& rng) {
  if (delta < 0.0F) throw std::invalid_argument("perturb_linf: delta < 0");
  Tensor out = t;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] += rng.uniform_f(-delta, delta);
  }
  return out;
}

Tensor perturb_linf_corner(const Tensor& t, float delta, Rng& rng) {
  if (delta < 0.0F) {
    throw std::invalid_argument("perturb_linf_corner: delta < 0");
  }
  Tensor out = t;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] += rng.chance(0.5) ? delta : -delta;
  }
  return out;
}

Tensor perturb_brightness(const Tensor& t, float factor) {
  Tensor out = t;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = clamp01(out[i] * factor);
  }
  return out;
}

Tensor perturb_contrast(const Tensor& t, float factor) {
  Tensor out = t;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = clamp01(0.5F + (out[i] - 0.5F) * factor);
  }
  return out;
}

Tensor perturb_gaussian(const Tensor& t, float stddev, Rng& rng) {
  Tensor out = t;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out[i] = clamp01(out[i] + static_cast<float>(rng.normal(0.0, stddev)));
  }
  return out;
}

Tensor perturb_occlude(const Tensor& t, std::size_t size, float value,
                       Rng& rng) {
  if (t.rank() != 3) {
    throw std::invalid_argument("perturb_occlude: CHW tensor required");
  }
  const std::size_t h = t.dim(1), w = t.dim(2);
  if (size == 0 || size > h || size > w) {
    throw std::invalid_argument("perturb_occlude: bad patch size");
  }
  Tensor out = t;
  const std::size_t y0 = rng.below(h - size + 1);
  const std::size_t x0 = rng.below(w - size + 1);
  for (std::size_t ch = 0; ch < t.dim(0); ++ch) {
    for (std::size_t y = y0; y < y0 + size; ++y) {
      for (std::size_t x = x0; x < x0 + size; ++x) {
        out(ch, y, x) = value;
      }
    }
  }
  return out;
}

Tensor perturb_blur(const Tensor& t) {
  if (t.rank() != 3) {
    throw std::invalid_argument("perturb_blur: CHW tensor required");
  }
  const std::size_t c = t.dim(0), h = t.dim(1), w = t.dim(2);
  Tensor out = t;
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        float acc = 0.0F;
        int cnt = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const auto yy = static_cast<std::ptrdiff_t>(y) + dy;
            const auto xx = static_cast<std::ptrdiff_t>(x) + dx;
            if (yy < 0 || xx < 0 || yy >= std::ptrdiff_t(h) ||
                xx >= std::ptrdiff_t(w)) {
              continue;
            }
            acc += t(ch, std::size_t(yy), std::size_t(xx));
            ++cnt;
          }
        }
        out(ch, y, x) = acc / static_cast<float>(cnt);
      }
    }
  }
  return out;
}

}  // namespace ranm
