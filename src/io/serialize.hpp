// Binary serialisation of networks, monitors, and datasets.
//
// Monitors built in the lab are deployed on the vehicle, so every monitor
// (and the network it watches) must round-trip through storage. The format
// is a simple tagged little-endian stream with a magic/version header; all
// loaders validate structure and throw std::runtime_error on malformed
// input.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/interval_monitor.hpp"
#include "core/minmax_monitor.hpp"
#include "core/onoff_monitor.hpp"
#include "core/sharded_monitor.hpp"
#include "data/dataset.hpp"
#include "nn/network.hpp"

namespace ranm {

// ---- networks -----------------------------------------------------------

/// Saves layer structure plus all parameters. Supported layer types:
/// Dense, Conv2D, ReLU, LeakyReLU, Sigmoid, Tanh, MaxPool2D, AvgPool2D,
/// Flatten. Throws std::invalid_argument on an unsupported layer.
void save_network(std::ostream& out, Network& net);
[[nodiscard]] Network load_network(std::istream& in);

void save_network_file(const std::string& path, Network& net);
[[nodiscard]] Network load_network_file(const std::string& path);

// ---- threshold specs ------------------------------------------------------

void save_threshold_spec(std::ostream& out, const ThresholdSpec& spec);
[[nodiscard]] ThresholdSpec load_threshold_spec(std::istream& in);

// ---- monitors ---------------------------------------------------------------

void save_monitor(std::ostream& out, const MinMaxMonitor& monitor);
[[nodiscard]] MinMaxMonitor load_minmax_monitor(std::istream& in);

void save_monitor(std::ostream& out, const OnOffMonitor& monitor);
[[nodiscard]] OnOffMonitor load_onoff_monitor(std::istream& in);

void save_monitor(std::ostream& out, const IntervalMonitor& monitor);
[[nodiscard]] IntervalMonitor load_interval_monitor(std::istream& in);

/// Sharded artifact: a versioned header (magic "RSH1", format version,
/// dimension, shard count, plan strategy/seed, observation count) followed
/// by each shard's explicit neuron list and its inner monitor payload in
/// the legacy single-monitor format. The plan's stored neuron lists are
/// authoritative on load, so artifacts survive strategy changes, and
/// save -> load -> save round-trips byte-identically. Inner monitors must
/// be of the serialisable families above.
void save_monitor(std::ostream& out, const ShardedMonitor& monitor);
[[nodiscard]] ShardedMonitor load_sharded_monitor(std::istream& in);

/// Type-erased save: dispatches on the monitor's dynamic type.
/// Supported: MinMaxMonitor, OnOffMonitor, IntervalMonitor,
/// ShardedMonitor, and compile::CompiledMonitor (as an RCM1 artifact).
/// Throws std::invalid_argument for other types (BoxClusterMonitor is a
/// baseline that only deploys in compiled form).
void save_any_monitor(std::ostream& out, const Monitor& monitor);
/// Type-erased load: returns whichever monitor type the stream contains
/// (legacy single-shard streams, sharded artifacts, and compiled RCM1
/// artifacts all load).
[[nodiscard]] std::unique_ptr<Monitor> load_any_monitor(std::istream& in);

// ---- datasets ---------------------------------------------------------------

void save_dataset(std::ostream& out, const Dataset& ds);
[[nodiscard]] Dataset load_dataset(std::istream& in);

}  // namespace ranm
