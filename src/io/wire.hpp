// Bounded little-endian wire primitives shared by the artifact loaders
// (io/serialize) and the serving frame protocol (serve/protocol).
//
// Every length or dimension read from an untrusted stream goes through a
// bound check *before* anything allocates from it: a corrupted or
// adversarial header must fail loudly on the check, not zero-fill
// gigabytes through Linux overcommit. This is the loader-bug class PR 1
// eliminated from the artifact formats; keeping the primitives in one
// place means the wire protocol cannot re-introduce it.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "tensor/tensor.hpp"

namespace ranm::io {

/// Upper bound on any loaded dimension or element count. Corrupted headers
/// must fail on these checks, before a constructor allocates from them.
constexpr std::uint64_t kMaxLoadElems = 1ULL << 26;

/// Tighter bound for monitor dimensions (neurons in one watched layer).
/// The paper's largest layers are a few thousand neurons; 2^20 leaves two
/// orders of magnitude of headroom while keeping the worst-case up-front
/// allocation a hostile header can trigger (e.g. a threshold-spec table of
/// per-neuron vectors, ~24 bytes each) in the tens of megabytes instead of
/// hundreds. Found by fuzzing: a ~30-byte stream claiming dim = 2^24
/// committed ~400 MB before the first truncated-read check could fire.
constexpr std::uint64_t kMaxMonitorDim = 1ULL << 20;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("ranm::io: truncated stream");
  return v;
}

inline void write_u32(std::ostream& out, std::uint32_t v) {
  write_pod(out, v);
}
inline std::uint32_t read_u32(std::istream& in) {
  return read_pod<std::uint32_t>(in);
}
inline void write_u64(std::ostream& out, std::uint64_t v) {
  write_pod(out, v);
}
inline std::uint64_t read_u64(std::istream& in) {
  return read_pod<std::uint64_t>(in);
}

/// u64 bounded by kMaxLoadElems — the only way a dimension-like field may
/// enter an allocation size.
[[nodiscard]] std::uint64_t read_dim_u64(std::istream& in);

/// Product of already-bounded dimensions, capped after every factor: both
/// operands stay <= kMaxLoadElems (2^26), so the multiply cannot wrap
/// before the check. Throws std::runtime_error past the cap.
[[nodiscard]] std::uint64_t bounded_numel(
    std::initializer_list<std::uint64_t> dims);

void write_shape(std::ostream& out, const Shape& shape);
/// Reads a shape whose rank and element count are bounded before any
/// tensor allocates from it.
[[nodiscard]] Shape read_shape(std::istream& in);

void write_tensor(std::ostream& out, const Tensor& t);
/// Reads a tensor; shape (and hence the allocation) is bounded first.
[[nodiscard]] Tensor read_tensor(std::istream& in);

/// Length-prefixed string, length bounded by `max_len` on the read side
/// before the string allocates.
void write_string(std::ostream& out, std::string_view s);
[[nodiscard]] std::string read_string(std::istream& in,
                                      std::uint64_t max_len);

// ---- zero-copy variants for the serving hot path --------------------------
//
// The iostream primitives above are fine for artifact load/save (cold,
// file-backed), but the serving layer decodes every request payload and
// encodes every reply on the query hot path, where an istringstream means
// one full payload copy plus stream overhead per frame. ByteView reads the
// same wire format straight out of a caller-owned buffer with the same
// bound checks; the append_* writers build the same bytes into a reusable
// std::string. Formats are identical byte for byte — protocol_test pins
// stream-encoded frames decoding through ByteView and vice versa.

/// Bounded cursor over an in-memory wire buffer. Never owns the bytes;
/// the viewed buffer must outlive the reader. Every read throws
/// std::runtime_error on truncation, and every length or dimension is
/// bounded before anything allocates from it.
class ByteView {
 public:
  explicit ByteView(std::string_view data) noexcept
      : cur_(data.data()), end_(data.data() + data.size()) {}

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - cur_);
  }
  [[nodiscard]] bool exhausted() const noexcept { return cur_ == end_; }

  template <typename T>
  T read_pod() {
    T v{};
    read_bytes(reinterpret_cast<char*>(&v), sizeof v);
    return v;
  }
  [[nodiscard]] std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  /// u64 bounded by kMaxLoadElems, mirroring read_dim_u64.
  [[nodiscard]] std::uint64_t read_dim_u64();
  [[nodiscard]] Shape read_shape();
  [[nodiscard]] Tensor read_tensor();
  [[nodiscard]] std::string read_string(std::uint64_t max_len);
  void read_bytes(char* dst, std::size_t len);

 private:
  const char* cur_;
  const char* end_;
};

template <typename T>
void append_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void append_u32(std::string& out, std::uint32_t v) {
  append_pod(out, v);
}
inline void append_u64(std::string& out, std::uint64_t v) {
  append_pod(out, v);
}
void append_shape(std::string& out, const Shape& shape);
void append_tensor(std::string& out, const Tensor& t);
void append_string(std::string& out, std::string_view s);

}  // namespace ranm::io
