// Bounded little-endian wire primitives shared by the artifact loaders
// (io/serialize) and the serving frame protocol (serve/protocol).
//
// Every length or dimension read from an untrusted stream goes through a
// bound check *before* anything allocates from it: a corrupted or
// adversarial header must fail loudly on the check, not zero-fill
// gigabytes through Linux overcommit. This is the loader-bug class PR 1
// eliminated from the artifact formats; keeping the primitives in one
// place means the wire protocol cannot re-introduce it.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "tensor/tensor.hpp"

namespace ranm::io {

/// Upper bound on any loaded dimension or element count. Corrupted headers
/// must fail on these checks, before a constructor allocates from them.
constexpr std::uint64_t kMaxLoadElems = 1ULL << 26;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("ranm::io: truncated stream");
  return v;
}

inline void write_u32(std::ostream& out, std::uint32_t v) {
  write_pod(out, v);
}
inline std::uint32_t read_u32(std::istream& in) {
  return read_pod<std::uint32_t>(in);
}
inline void write_u64(std::ostream& out, std::uint64_t v) {
  write_pod(out, v);
}
inline std::uint64_t read_u64(std::istream& in) {
  return read_pod<std::uint64_t>(in);
}

/// u64 bounded by kMaxLoadElems — the only way a dimension-like field may
/// enter an allocation size.
[[nodiscard]] std::uint64_t read_dim_u64(std::istream& in);

/// Product of already-bounded dimensions, capped after every factor: both
/// operands stay <= kMaxLoadElems (2^26), so the multiply cannot wrap
/// before the check. Throws std::runtime_error past the cap.
[[nodiscard]] std::uint64_t bounded_numel(
    std::initializer_list<std::uint64_t> dims);

void write_shape(std::ostream& out, const Shape& shape);
/// Reads a shape whose rank and element count are bounded before any
/// tensor allocates from it.
[[nodiscard]] Shape read_shape(std::istream& in);

void write_tensor(std::ostream& out, const Tensor& t);
/// Reads a tensor; shape (and hence the allocation) is bounded first.
[[nodiscard]] Tensor read_tensor(std::istream& in);

/// Length-prefixed string, length bounded by `max_len` on the read side
/// before the string allocates.
void write_string(std::ostream& out, std::string_view s);
[[nodiscard]] std::string read_string(std::istream& in,
                                      std::uint64_t max_len);

}  // namespace ranm::io
