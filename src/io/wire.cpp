#include "io/wire.hpp"

namespace ranm::io {

std::uint64_t read_dim_u64(std::istream& in) {
  const std::uint64_t v = read_u64(in);
  if (v > kMaxLoadElems) {
    throw std::runtime_error("ranm::io: implausible dimension");
  }
  return v;
}

std::uint64_t bounded_numel(std::initializer_list<std::uint64_t> dims) {
  std::uint64_t p = 1;
  for (std::uint64_t d : dims) {
    p *= d;
    if (p > kMaxLoadElems) {
      throw std::runtime_error("ranm::io: implausible tensor size");
    }
  }
  return p;
}

void write_shape(std::ostream& out, const Shape& shape) {
  write_u64(out, shape.size());
  for (std::size_t d : shape) write_u64(out, d);
}

Shape read_shape(std::istream& in) {
  const std::uint64_t rank = read_u64(in);
  if (rank > 8) throw std::runtime_error("ranm::io: implausible tensor rank");
  Shape shape(rank);
  std::uint64_t numel = 1;
  for (auto& d : shape) {
    const std::uint64_t v = read_dim_u64(in);
    numel = bounded_numel({numel, v});
    d = static_cast<std::size_t>(v);
  }
  return shape;
}

void write_tensor(std::ostream& out, const Tensor& t) {
  write_shape(out, t.shape());
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& in) {
  Shape shape = read_shape(in);  // dimensions and element count bounded there
  Tensor t(std::move(shape));
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("ranm::io: truncated tensor");
  return t;
}

void write_string(std::ostream& out, std::string_view s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in, std::uint64_t max_len) {
  const std::uint64_t len = read_u64(in);
  if (len > max_len) {
    throw std::runtime_error("ranm::io: implausible string length");
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("ranm::io: truncated string");
  return s;
}

}  // namespace ranm::io
