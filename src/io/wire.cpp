#include "io/wire.hpp"

#include <cstring>

namespace ranm::io {

std::uint64_t read_dim_u64(std::istream& in) {
  const std::uint64_t v = read_u64(in);
  if (v > kMaxLoadElems) {
    throw std::runtime_error("ranm::io: implausible dimension");
  }
  return v;
}

std::uint64_t bounded_numel(std::initializer_list<std::uint64_t> dims) {
  std::uint64_t p = 1;
  for (std::uint64_t d : dims) {
    p *= d;
    if (p > kMaxLoadElems) {
      throw std::runtime_error("ranm::io: implausible tensor size");
    }
  }
  return p;
}

void write_shape(std::ostream& out, const Shape& shape) {
  write_u64(out, shape.size());
  for (std::size_t d : shape) write_u64(out, d);
}

Shape read_shape(std::istream& in) {
  const std::uint64_t rank = read_u64(in);
  if (rank > 8) throw std::runtime_error("ranm::io: implausible tensor rank");
  Shape shape(rank);
  std::uint64_t numel = 1;
  for (auto& d : shape) {
    const std::uint64_t v = read_dim_u64(in);
    numel = bounded_numel({numel, v});
    d = static_cast<std::size_t>(v);
  }
  return shape;
}

void write_tensor(std::ostream& out, const Tensor& t) {
  write_shape(out, t.shape());
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& in) {
  Shape shape = read_shape(in);  // dimensions and element count bounded there
  Tensor t(std::move(shape));
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("ranm::io: truncated tensor");
  return t;
}

void write_string(std::ostream& out, std::string_view s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in, std::uint64_t max_len) {
  const std::uint64_t len = read_u64(in);
  if (len > max_len) {
    throw std::runtime_error("ranm::io: implausible string length");
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("ranm::io: truncated string");
  return s;
}

void ByteView::read_bytes(char* dst, std::size_t len) {
  if (remaining() < len) {
    throw std::runtime_error("ranm::io: truncated stream");
  }
  // dst may be null for a zero-length read (empty vector data()), and
  // memcpy's pointer arguments must be non-null even then.
  if (len != 0) std::memcpy(dst, cur_, len);
  cur_ += len;
}

std::uint64_t ByteView::read_dim_u64() {
  const std::uint64_t v = read_u64();
  if (v > kMaxLoadElems) {
    throw std::runtime_error("ranm::io: implausible dimension");
  }
  return v;
}

Shape ByteView::read_shape() {
  const std::uint64_t rank = read_u64();
  if (rank > 8) throw std::runtime_error("ranm::io: implausible tensor rank");
  Shape shape(rank);
  std::uint64_t numel = 1;
  for (auto& d : shape) {
    const std::uint64_t v = read_dim_u64();
    numel = bounded_numel({numel, v});
    d = static_cast<std::size_t>(v);
  }
  return shape;
}

Tensor ByteView::read_tensor() {
  Shape shape = read_shape();  // dimensions and element count bounded there
  Tensor t(std::move(shape));
  read_bytes(reinterpret_cast<char*>(t.data()), t.numel() * sizeof(float));
  return t;
}

std::string ByteView::read_string(std::uint64_t max_len) {
  const std::uint64_t len = read_u64();
  if (len > max_len) {
    throw std::runtime_error("ranm::io: implausible string length");
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  read_bytes(s.data(), s.size());
  return s;
}

void append_shape(std::string& out, const Shape& shape) {
  append_u64(out, shape.size());
  for (const std::size_t d : shape) append_u64(out, d);
}

void append_tensor(std::string& out, const Tensor& t) {
  append_shape(out, t.shape());
  out.append(reinterpret_cast<const char*>(t.data()),
             t.numel() * sizeof(float));
}

void append_string(std::string& out, std::string_view s) {
  append_u64(out, s.size());
  out.append(s.data(), s.size());
}

}  // namespace ranm::io
