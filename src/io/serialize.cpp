#include "io/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bdd/bdd_io.hpp"
#include "compile/compiled_io.hpp"
#include "io/wire.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/normalization.hpp"
#include "nn/pooling.hpp"

namespace ranm {
namespace {

constexpr std::uint32_t kNetMagic = 0x524E4E31U;    // "RNN1"
constexpr std::uint32_t kSpecMagic = 0x52545331U;   // "RTS1"
constexpr std::uint32_t kMonMagic = 0x524D4F31U;    // "RMO1"
constexpr std::uint32_t kShardMagic = 0x52534831U;  // "RSH1"
constexpr std::uint32_t kDataMagic = 0x52445331U;   // "RDS1"

/// Format version of the sharded artifact (header + per-shard payloads).
constexpr std::uint32_t kShardVersion = 1;

enum class LayerTag : std::uint32_t {
  kDense = 1,
  kConv2D = 2,
  kReLU = 3,
  kLeakyReLU = 4,
  kSigmoid = 5,
  kTanh = 6,
  kMaxPool2D = 7,
  kAvgPool2D = 8,
  kFlatten = 9,
  kNormalization = 10,
};

enum class MonitorTag : std::uint32_t {
  kMinMax = 1,
  kOnOff = 2,
  kInterval = 3,
  // V2 bodies carry a flags word plus (optionally) a custom variable
  // order and per-node profile counts. V2 is written only when one of
  // those extras is present, so pre-existing artifacts stay byte-stable.
  kOnOffV2 = 4,
  kIntervalV2 = 5,
};

/// V2 flags word: which optional sections follow the threshold spec.
constexpr std::uint32_t kFlagOrder = 1;    // level_of_slot permutation
constexpr std::uint32_t kFlagProfile = 2;  // per-node hit counters

// The bounded little-endian primitives live in io/wire.hpp, shared with
// the serving frame protocol; the loaders below are written against them.
using io::bounded_numel;
using io::kMaxMonitorDim;
using io::read_dim_u64;
using io::read_pod;
using io::read_shape;
using io::read_tensor;
using io::read_u64;
using io::write_pod;
using io::write_shape;
using io::write_tensor;
using io::write_u64;

void copy_params(Layer& layer, std::istream& in) {
  for (Tensor* p : layer.parameters()) {
    Tensor loaded = read_tensor(in);
    if (loaded.shape() != p->shape()) {
      throw std::runtime_error("ranm::io: parameter shape mismatch");
    }
    *p = std::move(loaded);
  }
}

}  // namespace

void save_network(std::ostream& out, Network& net) {
  write_pod(out, kNetMagic);
  write_u64(out, net.num_layers());
  for (std::size_t k = 1; k <= net.num_layers(); ++k) {
    Layer& layer = net.layer(k);
    if (auto* d = dynamic_cast<Dense*>(&layer)) {
      write_pod(out, LayerTag::kDense);
      write_u64(out, d->input_size());
      write_u64(out, d->output_size());
    } else if (auto* c = dynamic_cast<Conv2D*>(&layer)) {
      write_pod(out, LayerTag::kConv2D);
      const Conv2D::Config& cfg = c->config();
      write_u64(out, cfg.in_channels);
      write_u64(out, cfg.in_height);
      write_u64(out, cfg.in_width);
      write_u64(out, cfg.out_channels);
      write_u64(out, cfg.kernel_h);
      write_u64(out, cfg.kernel_w);
      write_u64(out, cfg.stride);
      write_u64(out, cfg.padding);
    } else if (dynamic_cast<ReLU*>(&layer)) {
      write_pod(out, LayerTag::kReLU);
      write_shape(out, layer.input_shape());
    } else if (auto* lr = dynamic_cast<LeakyReLU*>(&layer)) {
      write_pod(out, LayerTag::kLeakyReLU);
      write_shape(out, layer.input_shape());
      write_pod(out, lr->alpha());
    } else if (dynamic_cast<Sigmoid*>(&layer)) {
      write_pod(out, LayerTag::kSigmoid);
      write_shape(out, layer.input_shape());
    } else if (dynamic_cast<Tanh*>(&layer)) {
      write_pod(out, LayerTag::kTanh);
      write_shape(out, layer.input_shape());
    } else if (auto* mp = dynamic_cast<MaxPool2D*>(&layer)) {
      write_pod(out, LayerTag::kMaxPool2D);
      const Pooling::Config& cfg = mp->config();
      write_u64(out, cfg.channels);
      write_u64(out, cfg.in_height);
      write_u64(out, cfg.in_width);
      write_u64(out, cfg.window);
      write_u64(out, cfg.stride);
    } else if (auto* ap = dynamic_cast<AvgPool2D*>(&layer)) {
      write_pod(out, LayerTag::kAvgPool2D);
      const Pooling::Config& cfg = ap->config();
      write_u64(out, cfg.channels);
      write_u64(out, cfg.in_height);
      write_u64(out, cfg.in_width);
      write_u64(out, cfg.window);
      write_u64(out, cfg.stride);
    } else if (dynamic_cast<Flatten*>(&layer)) {
      write_pod(out, LayerTag::kFlatten);
      write_shape(out, layer.input_shape());
    } else if (auto* nz = dynamic_cast<Normalization*>(&layer)) {
      write_pod(out, LayerTag::kNormalization);
      write_shape(out, layer.input_shape());
      for (float v : nz->mean()) write_pod(out, v);
      for (float v : nz->inv_std()) write_pod(out, v);
    } else {
      throw std::invalid_argument("save_network: unsupported layer " +
                                  layer.name());
    }
    for (Tensor* p : layer.parameters()) write_tensor(out, *p);
  }
}

Network load_network(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kNetMagic) {
    throw std::runtime_error("load_network: bad magic");
  }
  const std::uint64_t n = read_u64(in);
  Network net;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto tag = read_pod<LayerTag>(in);
    switch (tag) {
      case LayerTag::kDense: {
        const auto din = static_cast<std::size_t>(read_dim_u64(in));
        const auto dout = static_cast<std::size_t>(read_dim_u64(in));
        (void)bounded_numel({din, dout});  // weight matrix allocation bound
        auto& layer = net.emplace<Dense>(din, dout);
        copy_params(layer, in);
        break;
      }
      case LayerTag::kReLU: {
        auto& layer = net.emplace<ReLU>(read_shape(in));
        copy_params(layer, in);
        break;
      }
      case LayerTag::kLeakyReLU: {
        Shape shape = read_shape(in);
        const float alpha = read_pod<float>(in);
        auto& layer = net.emplace<LeakyReLU>(std::move(shape), alpha);
        copy_params(layer, in);
        break;
      }
      case LayerTag::kSigmoid: {
        auto& layer = net.emplace<Sigmoid>(read_shape(in));
        copy_params(layer, in);
        break;
      }
      case LayerTag::kTanh: {
        auto& layer = net.emplace<Tanh>(read_shape(in));
        copy_params(layer, in);
        break;
      }
      case LayerTag::kFlatten: {
        auto& layer = net.emplace<Flatten>(read_shape(in));
        copy_params(layer, in);
        break;
      }
      case LayerTag::kConv2D: {
        Conv2D::Config cfg;
        cfg.in_channels = static_cast<std::size_t>(read_dim_u64(in));
        cfg.in_height = static_cast<std::size_t>(read_dim_u64(in));
        cfg.in_width = static_cast<std::size_t>(read_dim_u64(in));
        cfg.out_channels = static_cast<std::size_t>(read_dim_u64(in));
        cfg.kernel_h = static_cast<std::size_t>(read_dim_u64(in));
        cfg.kernel_w = static_cast<std::size_t>(read_dim_u64(in));
        cfg.stride = static_cast<std::size_t>(read_dim_u64(in));
        cfg.padding = static_cast<std::size_t>(read_dim_u64(in));
        (void)bounded_numel({cfg.out_channels, cfg.in_channels, cfg.kernel_h,
                             cfg.kernel_w});  // weight allocation bound
        (void)bounded_numel({cfg.in_channels, cfg.in_height, cfg.in_width});
        auto& layer = net.emplace<Conv2D>(cfg);
        copy_params(layer, in);
        break;
      }
      case LayerTag::kNormalization: {
        Shape shape = read_shape(in);
        const std::size_t count = shape_numel(shape);
        if (count == 0 || count > io::kMaxMonitorDim) {
          throw std::runtime_error("load_network: implausible layer size");
        }
        std::vector<float> mean(count), inv_std(count);
        for (auto& v : mean) v = read_pod<float>(in);
        for (auto& v : inv_std) v = read_pod<float>(in);
        try {
          copy_params(net.emplace<Normalization>(std::move(shape),
                                                 std::move(mean),
                                                 std::move(inv_std)),
                      in);
        } catch (const std::invalid_argument& e) {
          throw std::runtime_error(std::string("load_network: ") + e.what());
        }
        break;
      }
      case LayerTag::kMaxPool2D:
      case LayerTag::kAvgPool2D: {
        Pooling::Config cfg;
        cfg.channels = static_cast<std::size_t>(read_dim_u64(in));
        cfg.in_height = static_cast<std::size_t>(read_dim_u64(in));
        cfg.in_width = static_cast<std::size_t>(read_dim_u64(in));
        cfg.window = static_cast<std::size_t>(read_dim_u64(in));
        cfg.stride = static_cast<std::size_t>(read_dim_u64(in));
        (void)bounded_numel({cfg.channels, cfg.in_height, cfg.in_width});
        if (tag == LayerTag::kMaxPool2D) {
          copy_params(net.emplace<MaxPool2D>(cfg), in);
        } else {
          copy_params(net.emplace<AvgPool2D>(cfg), in);
        }
        break;
      }
      default:
        throw std::runtime_error("load_network: unsupported layer tag");
    }
  }
  return net;
}

void save_network_file(const std::string& path, Network& net) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_network_file: cannot open " + path);
  save_network(out, net);
}

Network load_network_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_network_file: cannot open " + path);
  return load_network(in);
}

void save_threshold_spec(std::ostream& out, const ThresholdSpec& spec) {
  write_pod(out, kSpecMagic);
  write_u64(out, spec.dimension());
  write_u64(out, spec.bits());
  for (std::size_t j = 0; j < spec.dimension(); ++j) {
    for (const Threshold& t : spec.thresholds(j)) {
      write_pod(out, t.value);
      write_pod(out, static_cast<std::uint8_t>(t.inclusive_below ? 1 : 0));
    }
  }
}

ThresholdSpec load_threshold_spec(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kSpecMagic) {
    throw std::runtime_error("load_threshold_spec: bad magic");
  }
  const auto dim = static_cast<std::size_t>(read_u64(in));
  const auto bits = static_cast<std::size_t>(read_u64(in));
  // kMaxMonitorDim (not the looser kMaxLoadElems): per_neuron below
  // allocates dim vector headers up front, so the bound must keep that
  // in the tens of megabytes even for an adversarial header.
  if (bits == 0 || bits > 16 || dim == 0 || dim > kMaxMonitorDim) {
    throw std::runtime_error("load_threshold_spec: implausible header");
  }
  const std::size_t m = (std::size_t(1) << bits) - 1;
  std::vector<std::vector<Threshold>> per_neuron(dim);
  for (auto& ts : per_neuron) {
    ts.resize(m);
    for (auto& t : ts) {
      t.value = read_pod<float>(in);
      t.inclusive_below = read_pod<std::uint8_t>(in) != 0;
    }
  }
  return ThresholdSpec(bits, std::move(per_neuron));
}

void save_monitor(std::ostream& out, const MinMaxMonitor& monitor) {
  write_pod(out, kMonMagic);
  write_pod(out, MonitorTag::kMinMax);
  write_u64(out, monitor.dimension());
  write_u64(out, monitor.observation_count());
  for (std::size_t j = 0; j < monitor.dimension(); ++j) {
    write_pod(out, monitor.lower(j));
    write_pod(out, monitor.upper(j));
  }
}

namespace {

MinMaxMonitor load_minmax_body(std::istream& in) {
  const auto dim = static_cast<std::size_t>(read_u64(in));
  // Guard before the vector allocations below: a corrupted dimension field
  // would otherwise zero-fill gigabytes (Linux overcommit makes the
  // allocation itself succeed) and hang instead of failing loudly.
  if (dim > kMaxMonitorDim) {
    throw std::runtime_error("load_minmax_monitor: implausible dimension");
  }
  const auto count = static_cast<std::size_t>(read_u64(in));
  std::vector<float> lower(dim), upper(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    lower[j] = read_pod<float>(in);
    upper[j] = read_pod<float>(in);
  }
  return MinMaxMonitor::from_bounds(std::move(lower), std::move(upper),
                                    count);
}

/// Writes the V2 extras (flags, optional order, BDD, optional profile
/// counts) shared by both BDD-backed monitor families.
template <typename M>
void save_bdd_monitor_v2(std::ostream& out, const M& monitor) {
  const bool has_order = monitor.has_custom_order();
  const bool has_profile = monitor.profile_queries() > 0;
  const std::uint32_t flags = (has_order ? kFlagOrder : 0U) |
                              (has_profile ? kFlagProfile : 0U);
  write_pod(out, flags);
  if (has_order) {
    for (const std::uint32_t lvl : monitor.variable_order()) {
      write_pod(out, lvl);
    }
  }
  const std::vector<bdd::NodeRef> node_order =
      bdd::save_bdd(out, monitor.manager(), monitor.root());
  if (has_profile) {
    write_u64(out, monitor.profile_queries());
    // One counter per saved slot, in file order (terminals first — their
    // counters are always zero, kept for alignment simplicity).
    for (const bdd::NodeRef n : node_order) {
      write_u64(out, monitor.manager().node_hits(n));
    }
  }
}

/// Loads the V2 extras into a freshly constructed (still empty) monitor.
template <typename M>
void load_bdd_monitor_v2_body(std::istream& in, M& monitor,
                              const char* what) {
  const auto flags = read_pod<std::uint32_t>(in);
  if ((flags & ~(kFlagOrder | kFlagProfile)) != 0) {
    throw std::runtime_error(std::string(what) + ": unknown flags");
  }
  if ((flags & kFlagOrder) != 0) {
    std::vector<std::uint32_t> order(monitor.variable_order().size());
    for (auto& lvl : order) lvl = read_pod<std::uint32_t>(in);
    try {
      monitor.apply_variable_order(std::move(order));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(std::string(what) + ": " + e.what());
    }
  }
  const bdd::LoadedBdd loaded = bdd::load_bdd_nodes(in, monitor.manager());
  monitor.set_root(loaded.root);
  if ((flags & kFlagProfile) != 0) {
    monitor.manager().record_queries(read_u64(in));
    for (const bdd::NodeRef n : loaded.nodes) {
      monitor.manager().record_hits(n, read_u64(in));
    }
  }
}

OnOffMonitor load_onoff_body(std::istream& in, bool v2) {
  OnOffMonitor monitor(load_threshold_spec(in));
  if (v2) {
    load_bdd_monitor_v2_body(in, monitor, "load_onoff_monitor");
  } else {
    monitor.set_root(bdd::load_bdd(in, monitor.manager()));
  }
  return monitor;
}

IntervalMonitor load_interval_body(std::istream& in, bool v2) {
  IntervalMonitor monitor(load_threshold_spec(in));
  if (v2) {
    load_bdd_monitor_v2_body(in, monitor, "load_interval_monitor");
  } else {
    monitor.set_root(bdd::load_bdd(in, monitor.manager()));
  }
  return monitor;
}

MonitorTag read_monitor_header(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kMonMagic) {
    throw std::runtime_error("load monitor: bad magic");
  }
  return read_pod<MonitorTag>(in);
}

/// Tag-dispatched body of a legacy single-monitor stream (the kMonMagic
/// header word has already been consumed). The single switch serving
/// every flat-monitor entry point.
std::unique_ptr<Monitor> load_tagged_monitor_body(std::istream& in) {
  switch (read_pod<MonitorTag>(in)) {
    case MonitorTag::kMinMax:
      return std::make_unique<MinMaxMonitor>(load_minmax_body(in));
    case MonitorTag::kOnOff:
      return std::make_unique<OnOffMonitor>(load_onoff_body(in, false));
    case MonitorTag::kInterval:
      return std::make_unique<IntervalMonitor>(load_interval_body(in, false));
    case MonitorTag::kOnOffV2:
      return std::make_unique<OnOffMonitor>(load_onoff_body(in, true));
    case MonitorTag::kIntervalV2:
      return std::make_unique<IntervalMonitor>(load_interval_body(in, true));
  }
  throw std::runtime_error("load monitor: unknown monitor tag");
}

/// Loads one legacy single-monitor stream (magic + tag + body). Shard
/// payloads go through this too, so a corrupted sharded artifact cannot
/// recurse into nested sharded headers.
std::unique_ptr<Monitor> load_flat_monitor(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kMonMagic) {
    throw std::runtime_error("load monitor: bad magic");
  }
  return load_tagged_monitor_body(in);
}

ShardedMonitor load_sharded_body(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kShardVersion) {
    throw std::runtime_error("load_sharded_monitor: unsupported version");
  }
  const auto dim = static_cast<std::size_t>(read_u64(in));
  const auto shard_count = static_cast<std::size_t>(read_u64(in));
  // Bound both before any per-shard allocation: the neuron-id vectors
  // below are sized from these fields. The shard cap is far above any
  // real deployment but keeps a corrupted header from provoking a
  // half-gigabyte vector-of-vectors allocation up front.
  if (dim == 0 || dim > io::kMaxMonitorDim || shard_count == 0 ||
      shard_count > dim || shard_count > 4096) {
    throw std::runtime_error("load_sharded_monitor: implausible header");
  }
  const auto strategy_raw = read_pod<std::uint32_t>(in);
  if (strategy_raw > std::uint32_t(ShardStrategy::kShuffled)) {
    throw std::runtime_error("load_sharded_monitor: unknown strategy");
  }
  const std::uint64_t seed = read_u64(in);
  const auto observations = static_cast<std::size_t>(read_u64(in));

  std::vector<std::vector<std::uint32_t>> groups(shard_count);
  std::vector<std::unique_ptr<Monitor>> shards;
  shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const auto count = static_cast<std::size_t>(read_u64(in));
    if (count == 0 || count > dim) {
      throw std::runtime_error("load_sharded_monitor: implausible shard");
    }
    groups[s].resize(count);
    for (auto& j : groups[s]) j = read_pod<std::uint32_t>(in);
    shards.push_back(load_flat_monitor(in));
  }
  // ShardPlan validates the partition; the ShardedMonitor constructor
  // validates per-shard monitor dimensions. Report both as stream errors.
  try {
    ShardPlan plan = ShardPlan::from_groups(
        dim, std::move(groups), ShardStrategy(strategy_raw), seed);
    return ShardedMonitor(std::move(plan), std::move(shards), observations);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("load_sharded_monitor: ") +
                             e.what());
  }
}

}  // namespace

MinMaxMonitor load_minmax_monitor(std::istream& in) {
  if (read_monitor_header(in) != MonitorTag::kMinMax) {
    throw std::runtime_error("load_minmax_monitor: bad header");
  }
  return load_minmax_body(in);
}

void save_monitor(std::ostream& out, const OnOffMonitor& monitor) {
  write_pod(out, kMonMagic);
  if (monitor.has_custom_order() || monitor.profile_queries() > 0) {
    write_pod(out, MonitorTag::kOnOffV2);
    save_threshold_spec(out, monitor.spec());
    save_bdd_monitor_v2(out, monitor);
    return;
  }
  write_pod(out, MonitorTag::kOnOff);
  save_threshold_spec(out, monitor.spec());
  (void)bdd::save_bdd(out, monitor.manager(), monitor.root());
}

OnOffMonitor load_onoff_monitor(std::istream& in) {
  const MonitorTag tag = read_monitor_header(in);
  if (tag != MonitorTag::kOnOff && tag != MonitorTag::kOnOffV2) {
    throw std::runtime_error("load_onoff_monitor: bad header");
  }
  return load_onoff_body(in, tag == MonitorTag::kOnOffV2);
}

void save_monitor(std::ostream& out, const IntervalMonitor& monitor) {
  write_pod(out, kMonMagic);
  if (monitor.has_custom_order() || monitor.profile_queries() > 0) {
    write_pod(out, MonitorTag::kIntervalV2);
    save_threshold_spec(out, monitor.spec());
    save_bdd_monitor_v2(out, monitor);
    return;
  }
  write_pod(out, MonitorTag::kInterval);
  save_threshold_spec(out, monitor.spec());
  (void)bdd::save_bdd(out, monitor.manager(), monitor.root());
}

IntervalMonitor load_interval_monitor(std::istream& in) {
  const MonitorTag tag = read_monitor_header(in);
  if (tag != MonitorTag::kInterval && tag != MonitorTag::kIntervalV2) {
    throw std::runtime_error("load_interval_monitor: bad header");
  }
  return load_interval_body(in, tag == MonitorTag::kIntervalV2);
}

void save_monitor(std::ostream& out, const ShardedMonitor& monitor) {
  const ShardPlan& plan = monitor.plan();
  // Reject unsupported shapes before the first byte goes out, so a
  // failed save cannot leave a truncated artifact behind.
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    if (dynamic_cast<const ShardedMonitor*>(&monitor.shard(s)) != nullptr) {
      throw std::invalid_argument(
          "save_monitor: nested sharded monitors are not serialisable");
    }
  }
  write_pod(out, kShardMagic);
  write_pod(out, kShardVersion);
  write_u64(out, plan.dimension());
  write_u64(out, plan.shard_count());
  write_pod(out, std::uint32_t(plan.strategy()));
  write_u64(out, plan.seed());
  write_u64(out, monitor.observation_count());
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const auto neurons = plan.neurons(s);
    write_u64(out, neurons.size());
    for (const std::uint32_t j : neurons) write_pod(out, j);
    save_any_monitor(out, monitor.shard(s));
  }
}

ShardedMonitor load_sharded_monitor(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kShardMagic) {
    throw std::runtime_error("load_sharded_monitor: bad magic");
  }
  return load_sharded_body(in);
}

void save_any_monitor(std::ostream& out, const Monitor& monitor) {
  if (const auto* mm = dynamic_cast<const MinMaxMonitor*>(&monitor)) {
    save_monitor(out, *mm);
  } else if (const auto* oo = dynamic_cast<const OnOffMonitor*>(&monitor)) {
    save_monitor(out, *oo);
  } else if (const auto* iv =
                 dynamic_cast<const IntervalMonitor*>(&monitor)) {
    save_monitor(out, *iv);
  } else if (const auto* sh =
                 dynamic_cast<const ShardedMonitor*>(&monitor)) {
    save_monitor(out, *sh);
  } else if (const auto* cm =
                 dynamic_cast<const compile::CompiledMonitor*>(&monitor)) {
    compile::save_compiled_monitor(out, *cm);
  } else {
    throw std::invalid_argument("save_any_monitor: unsupported type " +
                                monitor.describe());
  }
}

std::unique_ptr<Monitor> load_any_monitor(std::istream& in) {
  const auto magic = read_pod<std::uint32_t>(in);
  if (magic == kShardMagic) {
    return std::make_unique<ShardedMonitor>(load_sharded_body(in));
  }
  if (magic == compile::kCompiledMagic) {
    return std::make_unique<compile::CompiledMonitor>(
        compile::load_compiled_body(in));
  }
  if (magic != kMonMagic) {
    throw std::runtime_error("load_any_monitor: bad magic");
  }
  return load_tagged_monitor_body(in);
}

void save_dataset(std::ostream& out, const Dataset& ds) {
  write_pod(out, kDataMagic);
  write_u64(out, ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    write_tensor(out, ds.inputs[i]);
    write_tensor(out, ds.targets[i]);
  }
}

Dataset load_dataset(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kDataMagic) {
    throw std::runtime_error("load_dataset: bad magic");
  }
  const std::uint64_t n = read_u64(in);
  Dataset ds;
  // Cap the up-front reservation: `n` is attacker/corruption-controlled and a
  // huge value must fail on the first short tensor read, not on reserve().
  const auto reserve_n = static_cast<std::size_t>(std::min<std::uint64_t>(n, 1U << 16));
  ds.inputs.reserve(reserve_n);
  ds.targets.reserve(reserve_n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ds.inputs.push_back(read_tensor(in));
    ds.targets.push_back(read_tensor(in));
  }
  return ds;
}

}  // namespace ranm
