// Lowered monitor programs: the data structures a frozen monitor compiles
// into and the batched evaluators that run them.
//
// Construction-side monitors are built for *insertion*: hash-consed BDD
// arenas, threshold tables, k-means buffers. Deployment only ever asks one
// question — membership — so the compiler (compile/lower.hpp) lowers each
// monitor into the smallest structure that answers it:
//
//   BoxProgram  — straight-line interval tests (min-max, box-cluster).
//   CubeProgram — bitmask compares over the coded word: the stored set as
//                 a cube cover, one (mask, value) pair per cube. Chosen
//                 when the BDD's cube cover is small (robust builds with
//                 don't-cares typically are).
//   BddProgram  — the reachable BDD nodes as a topologically-ordered flat
//                 array walked with branchless index arithmetic: no hash
//                 tables, no construction garbage, children resolved by
//                 array index. Refs: 0 = FALSE, 1 = TRUE, r >= 2 is
//                 nodes[r - 2]; every child ref is strictly greater than
//                 its parent's ref, so a walk always terminates.
//
// Evaluation sweeps samples batch-lane-innermost (like the vectorized
// bound backend): per-neuron parameters load once per batch row, coding
// fuses compare-and-pack into sample-major u64 codewords (each lane's
// whole codeword stays on one cache line for the cube compares), cube
// covers skip coding any neuron no cube tests, and BDD programs run a
// bit-parallel bottom-up sweep — each 64-sample block's codewords are
// transposed into one u64 lane per variable and every node is evaluated
// exactly once per block with three bitwise ops, so the whole block
// shares one O(nodes) pass instead of 64 root-to-terminal chases.
// (Coding straight into var-major lanes, skipping the transpose, is
// slower: the scalar shift-chain packing defeats the vectorization of
// the sample-major compare loops, and the 64x64 transpose is cheap.)
// Partial trailing blocks run the same sweep with the spare lane bits
// zeroed: the sweep is branchless, and that beats any sparse
// reached-nodes pass whose per-node skip branches mispredict. Tiny
// batches (below the same threshold the interpreted monitors use) take
// lazy per-sample paths — code the sample's supported neurons once,
// then walk the BDD on bit tests — so the matrix setup never dominates.
// Scratch deliberately holds no char-sized buffers: u32/u64 lanes
// cannot alias the float rows, which keeps the inner sweeps
// vectorizable.
//
// Verdict semantics mirror the interpreted monitors bit-for-bit, NaN
// included: min-max boxes keep the `!(v < lo || v > hi)` form (NaN is
// contained), box-cluster boxes keep `v >= lo && v <= hi` (NaN is
// rejected), and threshold coding keeps `v > c` / `v >= c` (NaN codes
// to 0). The differential tests pin this equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "core/feature_batch.hpp"

namespace ranm::compile {

/// Which evaluator a compiled unit runs.
enum class ProgramKind : std::uint32_t { kBox = 1, kCube = 2, kBdd = 3 };

/// Union-of-boxes membership: v is in iff some box contains every
/// coordinate. One box with reject_nan == false is exactly a min-max
/// envelope (NaN contained); reject_nan == true is the box-cluster form
/// (NaN rejected).
struct BoxProgram {
  std::size_t dim = 0;
  std::size_t num_boxes = 0;
  bool reject_nan = false;
  /// Bounds stored box-major: box b's bound for neuron j at [b*dim + j].
  std::vector<float> lo, hi;
};

/// Per-neuron threshold table mapping a raw value to its B-bit code —
/// the lowered form of ThresholdSpec, flattened for row sweeps.
struct CodingTable {
  std::size_t dim = 0;
  std::size_t bits = 0;
  /// Neuron-major: neuron j's m = 2^bits - 1 ascending thresholds at
  /// [j*m .. j*m + m); `inclusive[k]` == 1 codes on v > c, 0 on v >= c.
  std::vector<float> values;
  std::vector<std::uint8_t> inclusive;

  [[nodiscard]] std::size_t thresholds_per_neuron() const noexcept {
    return (std::size_t(1) << bits) - 1;
  }
  /// BDD variables of the coded word (neuron j owns bits
  /// j*bits .. j*bits+bits-1, MSB first — the IntervalMonitor layout).
  [[nodiscard]] std::size_t num_vars() const noexcept { return dim * bits; }
  /// 64-bit words per packed codeword.
  [[nodiscard]] std::size_t num_words() const noexcept {
    return (num_vars() + 63) / 64;
  }
};

/// Cube-cover membership over the packed codeword: cube c matches iff
/// (word & mask[c]) == value[c] on every 64-bit word; membership is the
/// OR over cubes. Don't-care variables simply have their mask bit clear.
struct CubeProgram {
  std::size_t num_cubes = 0;
  /// Cube-major: cube c's words at [c*W .. c*W + W) with W from the
  /// unit's CodingTable::num_words().
  std::vector<std::uint64_t> mask, value;
};

/// One flat BDD node: child[bit] is the next ref for variable value bit.
struct FlatBddNode {
  std::uint32_t var = 0;
  std::uint32_t child[2] = {0, 0};
};

/// Reachable BDD as a flat array in topological (variable-ascending)
/// order. Ref convention: 0 = FALSE, 1 = TRUE, r >= 2 is nodes[r - 2];
/// children always have strictly larger refs than their parent.
struct BddProgram {
  std::uint32_t root = 0;
  std::vector<FlatBddNode> nodes;
};

/// One lowered monitor (one shard's worth): exactly one of the three
/// programs is active, selected by `kind`. Cube and BDD programs share
/// the coding table.
struct CompiledUnit {
  ProgramKind kind = ProgramKind::kBox;
  BoxProgram box;      // kind == kBox
  CodingTable coding;  // kind == kCube or kBdd
  CubeProgram cube;    // kind == kCube
  BddProgram bdd;      // kind == kBdd

  /// Derived, never serialised: the union of tested coding variables
  /// (cube masks / BDD node labels) as num_words() bitmask words.
  /// Precomputed by finalize() so the evaluators don't redo the
  /// O(cubes)/O(nodes) sweep on every call — the fixed cost that made
  /// tiny-batch compiled queries lose to the interpreted monitors.
  /// Empty (e.g. a hand-built unit) means compute on the fly.
  std::vector<std::uint64_t> support;

  /// Recomputes `support` from the active program. Idempotent; called by
  /// the CompiledMonitor constructor, which both the compiler and the
  /// artifact loader go through.
  void finalize();

  [[nodiscard]] std::size_t dimension() const noexcept {
    return kind == ProgramKind::kBox ? box.dim : coding.dim;
  }
};

/// Reusable per-unit evaluation buffers, owned by the caller so the
/// steady-state query path pays no allocator traffic (and so concurrent
/// shard evaluations never share scratch).
struct EvalScratch {
  std::vector<std::uint32_t> flags;    // box-sweep lane flags
  std::vector<std::uint64_t> words;    // packed codewords, sample-major
  std::vector<std::uint64_t> needed;   // cube-mask union / BDD support
  std::vector<std::uint64_t> varbits;  // var-major block lanes (BDD sweep)
  std::vector<std::uint64_t> vals;     // per-node block verdicts (BDD sweep)
};

/// Batched membership: out[i] = unit contains sample i of `batch`.
/// `row_map`, when non-null, maps the unit's local neuron j to batch row
/// row_map[j] (it must hold unit.dimension() in-range rows) — sharded
/// monitors evaluate each shard straight off the full batch this way,
/// with no per-call row-view construction. When null the mapping is the
/// identity and batch.dimension() must equal unit.dimension(). `out`
/// must hold batch.size() verdicts.
void eval_unit(const CompiledUnit& unit, const FeatureBatch& batch,
               const std::uint32_t* row_map, bool* out, EvalScratch& scratch);

inline void eval_unit(const CompiledUnit& unit, const FeatureBatch& batch,
                      bool* out, EvalScratch& scratch) {
  eval_unit(unit, batch, nullptr, out, scratch);
}

}  // namespace ranm::compile
