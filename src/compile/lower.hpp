// Monitor -> CompiledMonitor lowering (the "compile" in ranm_cli compile).
//
// Dispatches on the dynamic monitor type: min-max and box-cluster lower to
// BoxPrograms; the BDD families (on-off, interval) first attempt a bounded
// cube-cover extraction — robust builds with don't-cares usually cover in
// a handful of cubes, which evaluate as plain bitmask compares — and fall
// back to flattening the reachable BDD into a topologically-ordered node
// array. A ShardedMonitor lowers shard-by-shard (optionally in parallel:
// each shard's lowering touches only that shard's private manager).
#pragma once

#include "compile/compiled_monitor.hpp"

namespace ranm {
class Monitor;
}

namespace ranm::compile {

struct CompileOptions {
  /// Largest cube cover worth lowering to bitmask compares; BDDs whose
  /// cover is larger (or whose enumeration exceeds the work bound) lower
  /// to a flat node array instead.
  std::size_t cube_limit = 64;
  /// Shard-level lowering parallelism (ShardedMonitor sources only):
  /// at most `threads` shards lower concurrently, caller included;
  /// 1 runs inline, 0 uses hardware concurrency.
  std::size_t threads = 1;
};

/// Lowers a frozen monitor into its compiled form. Supported sources:
/// MinMaxMonitor, OnOffMonitor, IntervalMonitor, BoxClusterMonitor
/// (finalized), and ShardedMonitor over those. Throws
/// std::invalid_argument on an unsupported source and std::logic_error on
/// an unfinalized box-cluster.
[[nodiscard]] CompiledMonitor compile_monitor(const Monitor& monitor,
                                              const CompileOptions& options = {});

}  // namespace ranm::compile
