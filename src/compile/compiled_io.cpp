#include "compile/compiled_io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "io/wire.hpp"

namespace ranm::compile {
namespace {

constexpr std::uint32_t kCompiledVersion = 1;
constexpr std::uint64_t kMaxSourceLen = 256;
constexpr std::uint64_t kMaxShards = 4096;

using io::bounded_numel;
using io::read_dim_u64;
using io::read_pod;
using io::read_string;
using io::read_u32;
using io::read_u64;
using io::write_pod;
using io::write_string;
using io::write_u32;
using io::write_u64;

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("load_compiled_monitor: ") + what);
}

void save_unit(std::ostream& out, const CompiledUnit& unit) {
  write_u32(out, std::uint32_t(unit.kind));
  write_u64(out, unit.dimension());
  switch (unit.kind) {
    case ProgramKind::kBox: {
      const BoxProgram& p = unit.box;
      write_u64(out, p.num_boxes);
      write_pod(out, std::uint8_t(p.reject_nan ? 1 : 0));
      for (const float v : p.lo) write_pod(out, v);
      for (const float v : p.hi) write_pod(out, v);
      return;
    }
    case ProgramKind::kCube:
    case ProgramKind::kBdd: {
      const CodingTable& ct = unit.coding;
      write_u64(out, ct.bits);
      const std::size_t m = ct.thresholds_per_neuron();
      for (std::size_t j = 0; j < ct.dim; ++j) {
        for (std::size_t t = 0; t < m; ++t) {
          write_pod(out, ct.values[j * m + t]);
          write_pod(out, ct.inclusive[j * m + t]);
        }
      }
      if (unit.kind == ProgramKind::kCube) {
        const CubeProgram& p = unit.cube;
        const std::size_t W = ct.num_words();
        write_u64(out, p.num_cubes);
        for (std::size_t c = 0; c < p.num_cubes; ++c) {
          for (std::size_t w = 0; w < W; ++w) {
            write_u64(out, p.mask[c * W + w]);
          }
          for (std::size_t w = 0; w < W; ++w) {
            write_u64(out, p.value[c * W + w]);
          }
        }
      } else {
        const BddProgram& p = unit.bdd;
        write_u64(out, p.nodes.size());
        write_u32(out, p.root);
        for (const FlatBddNode& nd : p.nodes) {
          write_u32(out, nd.var);
          write_u32(out, nd.child[0]);
          write_u32(out, nd.child[1]);
        }
      }
      return;
    }
  }
  throw std::invalid_argument("save_compiled_monitor: corrupt program kind");
}

CodingTable load_coding(std::istream& in, std::uint64_t dim) {
  CodingTable ct;
  ct.dim = static_cast<std::size_t>(dim);
  const std::uint64_t bits = read_u64(in);
  if (bits == 0 || bits > 16) fail("implausible coding bits");
  ct.bits = static_cast<std::size_t>(bits);
  const std::size_t m = ct.thresholds_per_neuron();
  (void)bounded_numel({dim, m});  // table allocation bound
  ct.values.resize(ct.dim * m);
  ct.inclusive.resize(ct.dim * m);
  for (std::size_t k = 0; k < ct.dim * m; ++k) {
    ct.values[k] = read_pod<float>(in);
    ct.inclusive[k] = read_pod<std::uint8_t>(in);
  }
  return ct;
}

CompiledUnit load_unit(std::istream& in, std::uint64_t expected_dim) {
  const std::uint32_t kind_raw = read_u32(in);
  const std::uint64_t dim = read_dim_u64(in);
  if (dim == 0 || dim != expected_dim) fail("unit dimension mismatch");
  CompiledUnit unit;
  switch (kind_raw) {
    case std::uint32_t(ProgramKind::kBox): {
      unit.kind = ProgramKind::kBox;
      BoxProgram& p = unit.box;
      p.dim = static_cast<std::size_t>(dim);
      const std::uint64_t num_boxes = read_dim_u64(in);
      p.num_boxes = static_cast<std::size_t>(num_boxes);
      p.reject_nan = read_pod<std::uint8_t>(in) != 0;
      const std::uint64_t numel = bounded_numel({num_boxes, dim});
      p.lo.resize(static_cast<std::size_t>(numel));
      p.hi.resize(static_cast<std::size_t>(numel));
      for (auto& v : p.lo) v = read_pod<float>(in);
      for (auto& v : p.hi) v = read_pod<float>(in);
      return unit;
    }
    case std::uint32_t(ProgramKind::kCube): {
      unit.kind = ProgramKind::kCube;
      unit.coding = load_coding(in, dim);
      CubeProgram& p = unit.cube;
      // W derives from the coding table, never from the stream — one
      // fewer field that could disagree with the allocation size.
      const std::size_t W = unit.coding.num_words();
      const std::uint64_t num_cubes = read_dim_u64(in);
      p.num_cubes = static_cast<std::size_t>(num_cubes);
      const std::uint64_t numel = bounded_numel({num_cubes, W});
      p.mask.resize(static_cast<std::size_t>(numel));
      p.value.resize(static_cast<std::size_t>(numel));
      for (std::size_t c = 0; c < p.num_cubes; ++c) {
        for (std::size_t w = 0; w < W; ++w) {
          p.mask[c * W + w] = read_u64(in);
        }
        for (std::size_t w = 0; w < W; ++w) {
          p.value[c * W + w] = read_u64(in);
        }
      }
      return unit;
    }
    case std::uint32_t(ProgramKind::kBdd): {
      unit.kind = ProgramKind::kBdd;
      unit.coding = load_coding(in, dim);
      BddProgram& p = unit.bdd;
      const std::uint64_t node_count = read_dim_u64(in);
      const std::uint64_t num_vars = unit.coding.num_vars();
      p.root = read_u32(in);
      if (p.root >= 2 && std::uint64_t(p.root) - 2 >= node_count) {
        fail("bdd root out of range");
      }
      p.nodes.resize(static_cast<std::size_t>(node_count));
      for (std::size_t i = 0; i < p.nodes.size(); ++i) {
        FlatBddNode& nd = p.nodes[i];
        nd.var = read_u32(in);
        nd.child[0] = read_u32(in);
        nd.child[1] = read_u32(in);
        if (nd.var >= num_vars) fail("bdd node variable out of range");
        const std::uint32_t self = static_cast<std::uint32_t>(i) + 2;
        for (const std::uint32_t c : {nd.child[0], nd.child[1]}) {
          // Terminals aside, children must point strictly forward: this
          // is the invariant that makes every evaluation walk terminate,
          // so the loader re-establishes it instead of trusting the
          // writer.
          if (c >= 2 && (c <= self || std::uint64_t(c) - 2 >= node_count)) {
            fail("bdd child ref breaks topological order");
          }
        }
      }
      return unit;
    }
    default:
      fail("unknown program kind");
  }
}

}  // namespace

void save_compiled_monitor(std::ostream& out,
                           const CompiledMonitor& monitor) {
  write_pod(out, kCompiledMagic);
  write_u32(out, kCompiledVersion);
  write_u64(out, monitor.dimension());
  write_u64(out, monitor.shard_count());
  // Provenance is display-only; clamp instead of failing the save.
  std::string source = monitor.source();
  if (source.size() > kMaxSourceLen) source.resize(kMaxSourceLen);
  write_string(out, source);
  for (const CompiledMonitor::Shard& sh : monitor.shards()) {
    write_u64(out, sh.neurons.size());
    for (const std::uint32_t j : sh.neurons) write_u32(out, j);
    save_unit(out, sh.unit);
  }
}

CompiledMonitor load_compiled_body(std::istream& in) {
  if (read_u32(in) != kCompiledVersion) fail("unsupported version");
  const std::uint64_t dim = read_dim_u64(in);
  const std::uint64_t shard_count = read_u64(in);
  if (dim == 0 || shard_count == 0 || shard_count > kMaxShards ||
      shard_count > dim) {
    fail("implausible header");
  }
  std::string source = read_string(in, kMaxSourceLen);
  std::vector<CompiledMonitor::Shard> shards(
      static_cast<std::size_t>(shard_count));
  for (auto& sh : shards) {
    const std::uint64_t neuron_count = read_dim_u64(in);
    if (neuron_count > dim) fail("implausible shard neuron count");
    if (neuron_count == 0 && shard_count != 1) {
      fail("identity shard in a multi-shard artifact");
    }
    sh.neurons.resize(static_cast<std::size_t>(neuron_count));
    for (auto& j : sh.neurons) {
      j = read_u32(in);
      if (j >= dim) fail("shard neuron id out of range");
    }
    sh.unit = load_unit(in, neuron_count == 0 ? dim : neuron_count);
  }
  try {
    return CompiledMonitor(static_cast<std::size_t>(dim), std::move(source),
                           std::move(shards));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("load_compiled_monitor: ") +
                             e.what());
  }
}

CompiledMonitor load_compiled_monitor(std::istream& in) {
  if (read_u32(in) != kCompiledMagic) fail("bad magic");
  return load_compiled_body(in);
}

}  // namespace ranm::compile
