// Compiled monitor: a frozen monitor lowered to native decision code.
//
// A CompiledMonitor is the deployment form of any monitor family (flat or
// sharded): one CompiledUnit per shard, evaluated through the batched
// program evaluators in compile/program.hpp. It implements the Monitor
// query surface — contains / contains_batch / warn_batch — so it drops
// into MonitorService and ranm_serve unchanged, and answers verdicts
// bit-for-bit identical to the monitor it was compiled from.
//
// Compilation freezes the set: the observe* entry points throw
// std::logic_error. To fold in new training data, rebuild the source
// monitor and recompile (`ranm_cli compile`).
//
// Thread model mirrors ShardedMonitor: set_threads fans the per-shard
// evaluations of a query batch out on an internal pool; every task reads
// the shared batch through its own shard's neuron map and touches only
// its own program and scratch, so the fan-out is race-free by
// construction. Like every Monitor, callers serialise calls on it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compile/program.hpp"
#include "core/monitor.hpp"
#include "util/thread_pool.hpp"

namespace ranm::compile {

/// Frozen, query-only monitor built from lowered per-shard programs.
class CompiledMonitor final : public Monitor {
 public:
  /// One lowered shard. An empty neuron list means the unit covers the
  /// full feature space directly (the flat-monitor case, no row
  /// gathering); otherwise the unit sees the projection onto `neurons`
  /// in list order, exactly like a ShardedMonitor shard.
  struct Shard {
    std::vector<std::uint32_t> neurons;
    CompiledUnit unit;
  };

  /// `source` is the describe() string of the monitor this was compiled
  /// from (provenance only). Validates shard shapes against `dim`.
  CompiledMonitor(std::size_t dim, std::string source,
                  std::vector<Shard> shards);

  // ---- Monitor interface -------------------------------------------------

  [[nodiscard]] std::size_t dimension() const noexcept override {
    return dim_;
  }
  /// Compiled monitors are frozen: all observe entry points throw
  /// std::logic_error.
  void observe(std::span<const float> feature) override;
  void observe_bounds(std::span<const float> lo,
                      std::span<const float> hi) override;
  void observe_batch(const FeatureBatch& batch) override;
  void observe_bounds_batch(const FeatureBatch& lo,
                            const FeatureBatch& hi) override;
  [[nodiscard]] bool contains(std::span<const float> feature) const override;
  void contains_batch(const FeatureBatch& batch,
                      std::span<bool> out) const override;
  [[nodiscard]] std::string describe() const override;

  // ---- compiled-monitor surface ------------------------------------------

  /// Shard-level query parallelism, same contract as
  /// ShardedMonitor::set_threads: at most `threads` shards run
  /// concurrently (caller included), 1 runs inline, 0 uses hardware
  /// concurrency. A runtime property — never serialised.
  void set_threads(std::size_t threads);
  [[nodiscard]] std::size_t threads() const noexcept {
    return pool_ ? pool_->thread_count() : 1;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const std::vector<Shard>& shards() const noexcept {
    return shards_;
  }
  /// describe() of the source monitor at compile time.
  [[nodiscard]] const std::string& source() const noexcept {
    return source_;
  }
  /// Flat BDD nodes summed over shards (0: no BDD programs).
  [[nodiscard]] std::size_t total_nodes() const noexcept;
  /// Cubes summed over cube-program shards.
  [[nodiscard]] std::size_t total_cubes() const noexcept;

 private:
  /// Below this batch size the shard fan-out runs inline even when a
  /// pool is configured (same rationale as ShardedMonitor::kMinPoolBatch).
  static constexpr std::size_t kMinPoolBatch = 32;
  /// Minimum estimated per-shard work (rough op count, batch included)
  /// before the fan-out is worth a pool dispatch: compiled programs are
  /// often so cheap that waking workers costs more than the whole batch,
  /// so a batch-size floor alone is not enough grain control.
  static constexpr std::size_t kMinPoolWork = 65536;

  void eval_shard(std::size_t s, const FeatureBatch& batch,
                  bool* out) const;

  std::size_t dim_;
  std::string source_;
  std::vector<Shard> shards_;
  /// Largest per-sample cost estimate over the shards, precomputed at
  /// construction for the pool-grain test in contains_batch.
  std::size_t max_shard_cost_ = 0;
  std::unique_ptr<ThreadPool> pool_;  // null: run inline
  // Per-shard evaluation buffers plus the S x n verdict matrix, grown
  // once and reused: the batched membership query is the deployment hot
  // path and must not pay steady-state allocator traffic. Mutable
  // because contains_batch is const; safe because callers serialise
  // calls (scratch_[s] is only ever touched by shard s's task).
  mutable std::vector<EvalScratch> scratch_;
  mutable std::unique_ptr<bool[]> rows_scratch_;
  mutable std::size_t rows_capacity_ = 0;
};

}  // namespace ranm::compile
