#include "compile/program.hpp"

#include <algorithm>
#include <stdexcept>

namespace ranm::compile {
namespace {

/// Samples coded per stack-buffer block.
constexpr std::size_t kLane = 64;
/// Below this, matrix setup dominates and the per-sample lazy paths win —
/// the same threshold the interpreted monitors use
/// (Monitor::kMinBitMatrixBatch).
constexpr std::size_t kSmallBatch = 8;
/// Codewords up to this many words fit the lazy paths' stack buffer.
constexpr std::size_t kMaxStackWords = 16;

/// Branchless one-threshold code bit: v passes c under the inclusive
/// flag (0/1). Both compares are computed and the flag selects with mask
/// arithmetic — the flags are data, so a ternary here is a
/// hard-to-predict branch per threshold in the per-sample paths.
inline std::uint32_t pass_bit(float v, float c, std::uint32_t incl) {
  return (std::uint32_t(v > c) & incl) | (std::uint32_t(v >= c) & (incl ^ 1U));
}

/// Codes sample i's supported neurons into `word` (MSB-first bit layout,
/// identical to fill_words). One pass per sample — the lazy cube and BDD
/// paths both build this codeword once, then test bits, instead of
/// re-coding a neuron every time a cube or node touches it. Fully
/// branchless per neuron apart from the support skip: the threshold
/// compares select on the inclusive flags with mask arithmetic, because
/// a mispredicted branch per threshold costs more than the compare.
void code_sample_word(const CodingTable& ct, const FeatureBatch& batch,
                      const std::uint32_t* row_map, std::size_t i,
                      const std::uint64_t* support, std::uint64_t* word) {
  const std::size_t nbits = ct.bits;
  const std::size_t m = ct.thresholds_per_neuron();
  if (nbits == 2) {
    // Both variables of a 2-bit neuron share one word (j*2 is even).
    for (std::size_t j = 0; j < ct.dim; ++j) {
      const std::size_t var = j * 2;
      const std::uint64_t used =
          (support[var >> 6] >> (var & 63)) & 3ULL;
      if (used == 0) continue;
      const float v = batch.at(row_map != nullptr ? row_map[j] : j, i);
      const float* tv = ct.values.data() + j * 3;
      const std::uint8_t* inc = ct.inclusive.data() + j * 3;
      const std::uint32_t code = pass_bit(v, tv[0], inc[0]) +
                                 pass_bit(v, tv[1], inc[1]) +
                                 pass_bit(v, tv[2], inc[2]);
      const std::uint64_t swapped =
          ((code & 1U) << 1) | ((code >> 1) & 1U);
      word[var >> 6] |= swapped << (var & 63);
    }
    return;
  }
  for (std::size_t j = 0; j < ct.dim; ++j) {
    std::uint64_t used = 0;
    for (std::size_t b = 0; b < nbits; ++b) {
      const std::size_t var = j * nbits + b;
      used |= (support[var >> 6] >> (var & 63)) & 1ULL;
    }
    if (used == 0) continue;
    const float v = batch.at(row_map != nullptr ? row_map[j] : j, i);
    const float* tv = ct.values.data() + j * m;
    const std::uint8_t* inc = ct.inclusive.data() + j * m;
    std::uint32_t code = 0;
    for (std::size_t t = 0; t < m; ++t) code += pass_bit(v, tv[t], inc[t]);
    for (std::size_t b = 0; b < nbits; ++b) {
      const std::size_t var = j * nbits + b;
      word[var >> 6] |=
          std::uint64_t((code >> (nbits - 1 - b)) & 1U) << (var & 63);
    }
  }
}

/// Packs every sample's codeword into sample-major u64 words: bit
/// (var & 63) of words[i * W + var/64] is variable var's value for
/// sample i. Sample-major keeps each lane's whole codeword on one cache
/// line for the downstream cube compares and BDD walks. Coding runs
/// through a stack-local block buffer so the threshold compares
/// vectorize (nothing in the loop can alias the float rows). When
/// `needed` is non-null, neurons none of whose variables appear in it
/// are skipped — don't-care-rich cube covers pay only for the variables
/// they test.
///
/// kWords pins the codeword stride at compile time (0 = runtime): the
/// packing passes store through dst[i * W], and with W a runtime value
/// that is an unknown-stride read-modify-write the vectorizer refuses.
/// Monitors up to 64 variables (W == 1) and 128 variables (W == 2) —
/// every configuration the paper evaluates — get constant-stride loops.
template <std::size_t kWords>
void fill_words_stride(const CodingTable& ct, const FeatureBatch& batch,
                       const std::uint32_t* row_map, EvalScratch& s,
                       const std::uint64_t* needed) {
  const std::size_t n = batch.size();
  const std::size_t W = kWords != 0 ? kWords : ct.num_words();
  const std::size_t nbits = ct.bits;
  const std::size_t m = ct.thresholds_per_neuron();
  const std::size_t nblocks = (n + kLane - 1) / kLane;
  s.words.assign(n * W, 0ULL);
  std::uint64_t* words = s.words.data();
  std::uint32_t codes[kLane];
  for (std::size_t j = 0; j < ct.dim; ++j) {
    if (needed != nullptr) {
      bool used = false;
      for (std::size_t b = 0; b < nbits; ++b) {
        const std::size_t var = j * nbits + b;
        used = used || ((needed[var >> 6] >> (var & 63)) & 1ULL) != 0;
      }
      if (!used) continue;
    }
    const float* row =
        batch.neuron(row_map != nullptr ? row_map[j] : j).data();
    const float* values = ct.values.data() + j * m;
    const std::uint8_t* inclusive = ct.inclusive.data() + j * m;
    if (m == 1) {
      // 1-bit coding (the on-off family): one fused compare-and-pack
      // pass, no intermediate code buffer.
      const std::size_t var = j;
      const std::size_t w = var >> 6;
      const std::uint32_t shift = std::uint32_t(var & 63);
      const float c = values[0];
      std::uint64_t* dst = words + w;
      if (inclusive[0] != 0) {
        for (std::size_t i = 0; i < n; ++i) {
          dst[i * W] |= std::uint64_t(row[i] > c) << shift;
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          dst[i * W] |= std::uint64_t(row[i] >= c) << shift;
        }
      }
      continue;
    }
    if (nbits == 2) {
      // 2-bit coding: one fused pass computes the code (three threshold
      // compares, if-converted selects for the inclusive flags) and
      // stores it bit-swapped — both variables of a 2-bit neuron share
      // one word (j*2 is even), and MSB-first variable order puts code
      // bit 1 at the lower shift. Fusing avoids the intermediate code
      // buffer and its extra passes entirely.
      const std::size_t var = j * 2;
      const std::uint32_t shift = std::uint32_t(var & 63);
      const float t0 = values[0], t1 = values[1], t2 = values[2];
      const bool i0 = inclusive[0] != 0, i1 = inclusive[1] != 0,
                 i2 = inclusive[2] != 0;
      std::uint64_t* dst = words + (var >> 6);
      for (std::size_t i = 0; i < n; ++i) {
        const float v = row[i];
        const std::uint32_t code = std::uint32_t(i0 ? v > t0 : v >= t0) +
                                   std::uint32_t(i1 ? v > t1 : v >= t1) +
                                   std::uint32_t(i2 ? v > t2 : v >= t2);
        const std::uint64_t swapped =
            ((code & 1U) << 1) | ((code >> 1) & 1U);
        dst[i * W] |= swapped << shift;
      }
      continue;
    }
    for (std::size_t blk = 0; blk < nblocks; ++blk) {
      const std::size_t base = blk * kLane;
      const std::size_t count = std::min(kLane, n - base);
      const float* rb = row + base;
      for (std::size_t i = 0; i < count; ++i) codes[i] = 0;
      for (std::size_t t = 0; t < m; ++t) {
        const float c = values[t];
        if (inclusive[t] != 0) {
          for (std::size_t i = 0; i < count; ++i) codes[i] += rb[i] > c;
        } else {
          for (std::size_t i = 0; i < count; ++i) codes[i] += rb[i] >= c;
        }
      }
      for (std::size_t b = 0; b < nbits; ++b) {
        const std::size_t var = j * nbits + b;
        const std::uint32_t shift = std::uint32_t(var & 63);
        const std::uint32_t maskbit = 1U << (nbits - 1 - b);
        std::uint64_t* dst = words + base * W + (var >> 6);
        for (std::size_t i = 0; i < count; ++i) {
          dst[i * W] |=
              std::uint64_t((codes[i] & maskbit) != 0) << shift;
        }
      }
    }
  }
}

void fill_words(const CodingTable& ct, const FeatureBatch& batch,
                const std::uint32_t* row_map, EvalScratch& s,
                const std::uint64_t* needed) {
  switch (ct.num_words()) {
    case 1:
      fill_words_stride<1>(ct, batch, row_map, s, needed);
      return;
    case 2:
      fill_words_stride<2>(ct, batch, row_map, s, needed);
      return;
    default:
      fill_words_stride<0>(ct, batch, row_map, s, needed);
      return;
  }
}

void eval_box(const BoxProgram& p, const FeatureBatch& batch,
              const std::uint32_t* row_map, bool* out, EvalScratch& s) {
  const std::size_t n = batch.size();
  if (n < kSmallBatch) {
    // Lazy per-sample path: first failing coordinate ends the box.
    for (std::size_t i = 0; i < n; ++i) {
      bool in = false;
      for (std::size_t b = 0; b < p.num_boxes && !in; ++b) {
        const float* lo = p.lo.data() + b * p.dim;
        const float* hi = p.hi.data() + b * p.dim;
        bool ok = true;
        for (std::size_t j = 0; j < p.dim && ok; ++j) {
          const float v = batch.at(row_map != nullptr ? row_map[j] : j, i);
          ok = p.reject_nan ? v >= lo[j] && v <= hi[j]
                            : !(v < lo[j] || v > hi[j]);
        }
        in = ok;
      }
      out[i] = in;
    }
    return;
  }
  // Box-major sweep: each box streams over the contiguous batch rows
  // once; membership in any box is OR-folded into the output. The lane
  // flags are u32 so the compiler knows they cannot alias the rows.
  std::fill(out, out + n, false);
  s.flags.resize(n);
  std::uint32_t* flags = s.flags.data();
  std::size_t remaining = n;
  for (std::size_t b = 0; b < p.num_boxes && remaining > 0; ++b) {
    std::fill(flags, flags + n, 1U);
    const float* lo = p.lo.data() + b * p.dim;
    const float* hi = p.hi.data() + b * p.dim;
    for (std::size_t j = 0; j < p.dim; ++j) {
      const float* row =
          batch.neuron(row_map != nullptr ? row_map[j] : j).data();
      const float l = lo[j], h = hi[j];
      if (p.reject_nan) {
        for (std::size_t i = 0; i < n; ++i) {
          flags[i] &= std::uint32_t(row[i] >= l) & std::uint32_t(row[i] <= h);
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          flags[i] &= std::uint32_t(!(row[i] < l || row[i] > h));
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (flags[i] != 0 && !out[i]) {
        out[i] = true;
        --remaining;
      }
    }
  }
}

/// Per-sample cube scan with the codeword stride pinned at compile time
/// (0 = runtime): the early-exit scan is a handful of u64 compares per
/// sample, but only if the word/mask/value indexing constant-folds.
template <std::size_t kWords>
void match_cubes_stride(const CubeProgram& p, std::size_t n, std::size_t w64,
                        const std::uint64_t* words, bool* out) {
  const std::size_t W = kWords != 0 ? kWords : w64;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* word = words + i * W;
    bool in = false;
    for (std::size_t c = 0; c < p.num_cubes && !in; ++c) {
      const std::uint64_t* mask = p.mask.data() + c * W;
      const std::uint64_t* value = p.value.data() + c * W;
      bool match = true;
      for (std::size_t w = 0; w < W; ++w) {
        match &= (word[w] & mask[w]) == value[w];
      }
      in = match;
    }
    out[i] = in;
  }
}

void eval_cube(const CodingTable& ct, const CubeProgram& p,
               const FeatureBatch& batch, const std::uint32_t* row_map,
               bool* out, EvalScratch& s, const std::uint64_t* support) {
  const std::size_t n = batch.size();
  const std::size_t W = ct.num_words();
  // Union of the cube masks: variables outside it are don't-cares in
  // every cube, so their neurons never need coding. Normally
  // precomputed once (CompiledUnit::finalize); the fallback recompute
  // only serves hand-built units.
  if (support == nullptr) {
    s.needed.assign(W, 0ULL);
    for (std::size_t k = 0; k < p.num_cubes * W; ++k) {
      s.needed[k % W] |= p.mask[k];
    }
    support = s.needed.data();
  }
  if (n < kSmallBatch && W <= kMaxStackWords) {
    // Lazy per-sample path: code one sample's needed neurons into a
    // stack codeword and scan the cubes — no batch matrix, so a single
    // query never pays per-neuron sweep setup dim times over.
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t word[kMaxStackWords] = {};
      code_sample_word(ct, batch, row_map, i, support, word);
      bool in = false;
      for (std::size_t c = 0; c < p.num_cubes && !in; ++c) {
        bool match = true;
        for (std::size_t w = 0; w < W; ++w) {
          match &= (word[w] & p.mask[c * W + w]) == p.value[c * W + w];
        }
        in = match;
      }
      out[i] = in;
    }
    return;
  }
  fill_words(ct, batch, row_map, s, support);
  switch (W) {
    case 1:
      match_cubes_stride<1>(p, n, W, s.words.data(), out);
      return;
    case 2:
      match_cubes_stride<2>(p, n, W, s.words.data(), out);
      return;
    default:
      match_cubes_stride<0>(p, n, W, s.words.data(), out);
      return;
  }
}

/// In-place 64x64 bit-matrix transpose (the recursive block-swap
/// scheme): bit j of a[k] moves to bit k of a[j].
void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0xFFFFFFFF00000000ULL;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m >> j) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (a[k] ^ (a[k | j] << j)) & m;
      a[k] ^= t;
      a[k | j] ^= t >> j;
    }
  }
}

void eval_bdd(const CodingTable& ct, const BddProgram& p,
              const FeatureBatch& batch, const std::uint32_t* row_map,
              bool* out, EvalScratch& s, const std::uint64_t* support) {
  const std::size_t n = batch.size();
  if (p.root < 2) {
    std::fill(out, out + n, p.root == 1);
    return;
  }
  const FlatBddNode* nodes = p.nodes.data();
  const std::size_t W = ct.num_words();
  const std::size_t num_nodes = p.nodes.size();
  // Support mask: neurons none of whose variables label a node never
  // influence a verdict, so coding skips them (robust sets drop many).
  // Normally precomputed once (CompiledUnit::finalize).
  if (support == nullptr) {
    s.needed.assign(W, 0ULL);
    for (std::size_t k = 0; k < num_nodes; ++k) {
      s.needed[nodes[k].var >> 6] |= 1ULL << (nodes[k].var & 63);
    }
    support = s.needed.data();
  }
  if (n < kSmallBatch && W <= kMaxStackWords) {
    // Lazy per-sample path: code the sample's supported neurons once,
    // then walk the BDD on bit tests. Coding is one streaming pass over
    // the threshold table; the old walk re-ran the threshold compares at
    // every node (twice per 2-bit neuron), which made a single compiled
    // query slower than the interpreted one.
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t word[kMaxStackWords] = {};
      code_sample_word(ct, batch, row_map, i, support, word);
      std::uint32_t ref = p.root;
      // The child select is a *branch* on purpose: a branch lets the
      // core speculate down the predicted path instead of serialising
      // every hop on the word load (indexing child[bit] directly is a
      // data dependency and measures ~2x slower on deep walks), and
      // monitor query streams repeat similar paths, so it predicts well.
      while (ref >= 2) {
        const FlatBddNode& nd = nodes[ref - 2];
        if ((word[nd.var >> 6] >> (nd.var & 63)) & 1ULL) {
          ref = nd.child[1];
        } else {
          ref = nd.child[0];
        }
      }
      out[i] = ref == 1;
    }
    return;
  }
  // Bit-parallel sweeps, 64 samples per block, over one u64 lane per
  // variable (bit i = sample base + i's value): pack sample-major
  // codewords once (the per-neuron compare loops vectorize), then
  // transpose each block into var-major lanes.
  fill_words(ct, batch, row_map, s, support);
  s.varbits.resize(W * 64);
  // vals is indexed by *ref* with the two terminals padded in front
  // (vals[0] = FALSE, vals[1] = TRUE, node k at vals[k + 2]), so the
  // sweep resolves children with one unconditional load each.
  s.vals.resize(num_nodes + 2);
  const std::uint64_t* words = s.words.data();
  for (std::size_t base = 0; base < n; base += kLane) {
    const std::size_t count = std::min(kLane, n - base);
    for (std::size_t w = 0; w < W; ++w) {
      std::uint64_t col[kLane];
      for (std::size_t i = 0; i < count; ++i) {
        col[i] = words[(base + i) * W + w];
      }
      for (std::size_t i = count; i < kLane; ++i) col[i] = 0;
      transpose64(col);
      std::copy(col, col + kLane, s.varbits.data() + w * 64);
    }
    const std::uint64_t* varbits = s.varbits.data();
    // Bottom-up, every node exactly once — vals[ref] =
    // (lane & hi) | (~lane & lo), walking the array backwards so
    // children (strictly larger refs) are already resolved. Per block
    // this costs O(nodes), versus O(sum of path lengths) for a
    // per-sample walk: the whole block shares one sweep instead of
    // chasing up to 64 separate root-to-terminal chains. Partial
    // blocks run the same sweep with the spare lane bits zeroed and
    // ignored: a sparse top-down reach-mask pass that skips unreached
    // nodes was tried and lost — at tail sizes its per-node skip
    // branches are ~50% dense, and the mispredicts cost more than the
    // branchless full sweep.
    std::uint64_t* vals = s.vals.data();
    vals[0] = 0;
    vals[1] = ~0ULL;
    for (std::size_t k = num_nodes; k-- > 0;) {
      const FlatBddNode& nd = nodes[k];
      const std::uint64_t lane = varbits[nd.var];
      vals[k + 2] =
          (lane & vals[nd.child[1]]) | (~lane & vals[nd.child[0]]);
    }
    const std::uint64_t r = vals[p.root];
    for (std::size_t i = 0; i < count; ++i) {
      out[base + i] = ((r >> i) & 1ULL) != 0;
    }
  }
}

}  // namespace

void CompiledUnit::finalize() {
  support.clear();
  if (kind == ProgramKind::kBox) return;
  const std::size_t W = coding.num_words();
  support.assign(W, 0ULL);
  if (kind == ProgramKind::kCube) {
    for (std::size_t k = 0; k < cube.num_cubes * W; ++k) {
      support[k % W] |= cube.mask[k];
    }
  } else {
    for (const FlatBddNode& nd : bdd.nodes) {
      support[nd.var >> 6] |= 1ULL << (nd.var & 63);
    }
  }
}

void eval_unit(const CompiledUnit& unit, const FeatureBatch& batch,
               const std::uint32_t* row_map, bool* out,
               EvalScratch& scratch) {
  // With a row map the batch is the caller's full feature space and the
  // map entries were validated when the map was built (the CompiledMonitor
  // constructor range-checks every shard's neuron list).
  if (row_map == nullptr && batch.dimension() != unit.dimension()) {
    throw std::invalid_argument("eval_unit: dimension mismatch");
  }
  if (batch.empty()) return;
  const std::uint64_t* support =
      unit.support.size() == unit.coding.num_words() && !unit.support.empty()
          ? unit.support.data()
          : nullptr;
  switch (unit.kind) {
    case ProgramKind::kBox:
      eval_box(unit.box, batch, row_map, out, scratch);
      return;
    case ProgramKind::kCube:
      eval_cube(unit.coding, unit.cube, batch, row_map, out, scratch,
                support);
      return;
    case ProgramKind::kBdd:
      eval_bdd(unit.coding, unit.bdd, batch, row_map, out, scratch, support);
      return;
  }
  throw std::logic_error("eval_unit: corrupt program kind");
}

}  // namespace ranm::compile
