#include "compile/program.hpp"

#include <algorithm>
#include <stdexcept>

namespace ranm::compile {
namespace {

/// Samples coded per stack-buffer block.
constexpr std::size_t kLane = 64;
/// Below this, matrix setup dominates and the per-sample lazy paths win —
/// the same threshold the interpreted monitors use
/// (Monitor::kMinBitMatrixBatch).
constexpr std::size_t kSmallBatch = 8;

/// Codes one neuron's value: |{thresholds v exceeds}|. Thresholds
/// ascend, so the exceeded set is a prefix and the count equals
/// ThresholdSpec::code (NaN fails every compare and codes to 0, exactly
/// like the interpreted path).
std::uint32_t code_value(const CodingTable& ct, std::size_t j, float v) {
  const std::size_t m = ct.thresholds_per_neuron();
  const float* values = ct.values.data() + j * m;
  const std::uint8_t* inclusive = ct.inclusive.data() + j * m;
  std::uint32_t code = 0;
  for (std::size_t t = 0; t < m; ++t) {
    code += inclusive[t] != 0 ? v > values[t] : v >= values[t];
  }
  return code;
}

/// Packs every sample's codeword into sample-major u64 words: bit
/// (var & 63) of words[i * W + var/64] is variable var's value for
/// sample i. Sample-major keeps each lane's whole codeword on one cache
/// line for the downstream cube compares and BDD walks. Coding runs
/// through a stack-local block buffer so the threshold compares
/// vectorize (nothing in the loop can alias the float rows). When
/// `needed` is non-null, neurons none of whose variables appear in it
/// are skipped — don't-care-rich cube covers pay only for the variables
/// they test.
///
/// kWords pins the codeword stride at compile time (0 = runtime): the
/// packing passes store through dst[i * W], and with W a runtime value
/// that is an unknown-stride read-modify-write the vectorizer refuses.
/// Monitors up to 64 variables (W == 1) and 128 variables (W == 2) —
/// every configuration the paper evaluates — get constant-stride loops.
template <std::size_t kWords>
void fill_words_stride(const CodingTable& ct, const FeatureBatch& batch,
                       EvalScratch& s, const std::uint64_t* needed) {
  const std::size_t n = batch.size();
  const std::size_t W = kWords != 0 ? kWords : ct.num_words();
  const std::size_t nbits = ct.bits;
  const std::size_t m = ct.thresholds_per_neuron();
  const std::size_t nblocks = (n + kLane - 1) / kLane;
  s.words.assign(n * W, 0ULL);
  std::uint64_t* words = s.words.data();
  std::uint32_t codes[kLane];
  for (std::size_t j = 0; j < ct.dim; ++j) {
    if (needed != nullptr) {
      bool used = false;
      for (std::size_t b = 0; b < nbits; ++b) {
        const std::size_t var = j * nbits + b;
        used = used || ((needed[var >> 6] >> (var & 63)) & 1ULL) != 0;
      }
      if (!used) continue;
    }
    const float* row = batch.neuron(j).data();
    const float* values = ct.values.data() + j * m;
    const std::uint8_t* inclusive = ct.inclusive.data() + j * m;
    if (m == 1) {
      // 1-bit coding (the on-off family): one fused compare-and-pack
      // pass, no intermediate code buffer.
      const std::size_t var = j;
      const std::size_t w = var >> 6;
      const std::uint32_t shift = std::uint32_t(var & 63);
      const float c = values[0];
      std::uint64_t* dst = words + w;
      if (inclusive[0] != 0) {
        for (std::size_t i = 0; i < n; ++i) {
          dst[i * W] |= std::uint64_t(row[i] > c) << shift;
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          dst[i * W] |= std::uint64_t(row[i] >= c) << shift;
        }
      }
      continue;
    }
    if (nbits == 2) {
      // 2-bit coding: one fused pass computes the code (three threshold
      // compares, if-converted selects for the inclusive flags) and
      // stores it bit-swapped — both variables of a 2-bit neuron share
      // one word (j*2 is even), and MSB-first variable order puts code
      // bit 1 at the lower shift. Fusing avoids the intermediate code
      // buffer and its extra passes entirely.
      const std::size_t var = j * 2;
      const std::uint32_t shift = std::uint32_t(var & 63);
      const float t0 = values[0], t1 = values[1], t2 = values[2];
      const bool i0 = inclusive[0] != 0, i1 = inclusive[1] != 0,
                 i2 = inclusive[2] != 0;
      std::uint64_t* dst = words + (var >> 6);
      for (std::size_t i = 0; i < n; ++i) {
        const float v = row[i];
        const std::uint32_t code = std::uint32_t(i0 ? v > t0 : v >= t0) +
                                   std::uint32_t(i1 ? v > t1 : v >= t1) +
                                   std::uint32_t(i2 ? v > t2 : v >= t2);
        const std::uint64_t swapped =
            ((code & 1U) << 1) | ((code >> 1) & 1U);
        dst[i * W] |= swapped << shift;
      }
      continue;
    }
    for (std::size_t blk = 0; blk < nblocks; ++blk) {
      const std::size_t base = blk * kLane;
      const std::size_t count = std::min(kLane, n - base);
      const float* rb = row + base;
      for (std::size_t i = 0; i < count; ++i) codes[i] = 0;
      for (std::size_t t = 0; t < m; ++t) {
        const float c = values[t];
        if (inclusive[t] != 0) {
          for (std::size_t i = 0; i < count; ++i) codes[i] += rb[i] > c;
        } else {
          for (std::size_t i = 0; i < count; ++i) codes[i] += rb[i] >= c;
        }
      }
      for (std::size_t b = 0; b < nbits; ++b) {
        const std::size_t var = j * nbits + b;
        const std::uint32_t shift = std::uint32_t(var & 63);
        const std::uint32_t maskbit = 1U << (nbits - 1 - b);
        std::uint64_t* dst = words + base * W + (var >> 6);
        for (std::size_t i = 0; i < count; ++i) {
          dst[i * W] |=
              std::uint64_t((codes[i] & maskbit) != 0) << shift;
        }
      }
    }
  }
}

void fill_words(const CodingTable& ct, const FeatureBatch& batch,
                EvalScratch& s, const std::uint64_t* needed) {
  switch (ct.num_words()) {
    case 1:
      fill_words_stride<1>(ct, batch, s, needed);
      return;
    case 2:
      fill_words_stride<2>(ct, batch, s, needed);
      return;
    default:
      fill_words_stride<0>(ct, batch, s, needed);
      return;
  }
}

void eval_box(const BoxProgram& p, const FeatureBatch& batch, bool* out,
              EvalScratch& s) {
  const std::size_t n = batch.size();
  if (n < kSmallBatch) {
    // Lazy per-sample path: first failing coordinate ends the box.
    for (std::size_t i = 0; i < n; ++i) {
      bool in = false;
      for (std::size_t b = 0; b < p.num_boxes && !in; ++b) {
        const float* lo = p.lo.data() + b * p.dim;
        const float* hi = p.hi.data() + b * p.dim;
        bool ok = true;
        for (std::size_t j = 0; j < p.dim && ok; ++j) {
          const float v = batch.at(j, i);
          ok = p.reject_nan ? v >= lo[j] && v <= hi[j]
                            : !(v < lo[j] || v > hi[j]);
        }
        in = ok;
      }
      out[i] = in;
    }
    return;
  }
  // Box-major sweep: each box streams over the contiguous batch rows
  // once; membership in any box is OR-folded into the output. The lane
  // flags are u32 so the compiler knows they cannot alias the rows.
  std::fill(out, out + n, false);
  s.flags.resize(n);
  std::uint32_t* flags = s.flags.data();
  std::size_t remaining = n;
  for (std::size_t b = 0; b < p.num_boxes && remaining > 0; ++b) {
    std::fill(flags, flags + n, 1U);
    const float* lo = p.lo.data() + b * p.dim;
    const float* hi = p.hi.data() + b * p.dim;
    for (std::size_t j = 0; j < p.dim; ++j) {
      const float* row = batch.neuron(j).data();
      const float l = lo[j], h = hi[j];
      if (p.reject_nan) {
        for (std::size_t i = 0; i < n; ++i) {
          flags[i] &= std::uint32_t(row[i] >= l) & std::uint32_t(row[i] <= h);
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          flags[i] &= std::uint32_t(!(row[i] < l || row[i] > h));
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (flags[i] != 0 && !out[i]) {
        out[i] = true;
        --remaining;
      }
    }
  }
}

/// Per-sample cube scan with the codeword stride pinned at compile time
/// (0 = runtime): the early-exit scan is a handful of u64 compares per
/// sample, but only if the word/mask/value indexing constant-folds.
template <std::size_t kWords>
void match_cubes_stride(const CubeProgram& p, std::size_t n, std::size_t w64,
                        const std::uint64_t* words, bool* out) {
  const std::size_t W = kWords != 0 ? kWords : w64;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* word = words + i * W;
    bool in = false;
    for (std::size_t c = 0; c < p.num_cubes && !in; ++c) {
      const std::uint64_t* mask = p.mask.data() + c * W;
      const std::uint64_t* value = p.value.data() + c * W;
      bool match = true;
      for (std::size_t w = 0; w < W; ++w) {
        match &= (word[w] & mask[w]) == value[w];
      }
      in = match;
    }
    out[i] = in;
  }
}

void eval_cube(const CodingTable& ct, const CubeProgram& p,
               const FeatureBatch& batch, bool* out, EvalScratch& s) {
  const std::size_t n = batch.size();
  const std::size_t W = ct.num_words();
  // Union of the cube masks: variables outside it are don't-cares in
  // every cube, so their neurons never need coding.
  s.needed.assign(W, 0ULL);
  for (std::size_t k = 0; k < p.num_cubes * W; ++k) {
    s.needed[k % W] |= p.mask[k];
  }
  // Codewords up to this many words fit the small-batch stack buffer.
  constexpr std::size_t kMaxStackWords = 16;
  if (n < kSmallBatch && W <= kMaxStackWords) {
    // Lazy per-sample path: code one sample's needed neurons into a
    // stack codeword and scan the cubes — no batch matrix, so a single
    // query never pays per-neuron sweep setup dim times over.
    const std::size_t nbits = ct.bits;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t word[kMaxStackWords] = {};
      for (std::size_t j = 0; j < ct.dim; ++j) {
        bool used = false;
        for (std::size_t b = 0; b < nbits; ++b) {
          const std::size_t var = j * nbits + b;
          used = used || ((s.needed[var >> 6] >> (var & 63)) & 1ULL) != 0;
        }
        if (!used) continue;
        const std::uint32_t code = code_value(ct, j, batch.at(j, i));
        for (std::size_t b = 0; b < nbits; ++b) {
          const std::size_t var = j * nbits + b;
          word[var >> 6] |=
              std::uint64_t((code >> (nbits - 1 - b)) & 1U) << (var & 63);
        }
      }
      bool in = false;
      for (std::size_t c = 0; c < p.num_cubes && !in; ++c) {
        bool match = true;
        for (std::size_t w = 0; w < W; ++w) {
          match &= (word[w] & p.mask[c * W + w]) == p.value[c * W + w];
        }
        in = match;
      }
      out[i] = in;
    }
    return;
  }
  fill_words(ct, batch, s, s.needed.data());
  switch (W) {
    case 1:
      match_cubes_stride<1>(p, n, W, s.words.data(), out);
      return;
    case 2:
      match_cubes_stride<2>(p, n, W, s.words.data(), out);
      return;
    default:
      match_cubes_stride<0>(p, n, W, s.words.data(), out);
      return;
  }
}

/// In-place 64x64 bit-matrix transpose (the recursive block-swap
/// scheme): bit j of a[k] moves to bit k of a[j].
void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0xFFFFFFFF00000000ULL;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m >> j) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (a[k] ^ (a[k | j] << j)) & m;
      a[k] ^= t;
      a[k | j] ^= t >> j;
    }
  }
}

void eval_bdd(const CodingTable& ct, const BddProgram& p,
              const FeatureBatch& batch, bool* out, EvalScratch& s) {
  const std::size_t n = batch.size();
  if (p.root < 2) {
    std::fill(out, out + n, p.root == 1);
    return;
  }
  const std::size_t nbits = ct.bits;
  const FlatBddNode* nodes = p.nodes.data();
  if (n < kSmallBatch) {
    // Lazy per-sample walk: only the variables on the path get coded
    // (one path is ~dim * bits compares worst case, usually far fewer).
    // The 1- and 2-bit codings resolve var -> (neuron, bit) with shifts;
    // a runtime division per node would dominate the walk.
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t ref = p.root;
      while (ref >= 2) {
        const FlatBddNode& nd = nodes[ref - 2];
        std::size_t j, b;
        if (nbits == 1) {
          j = nd.var;
          b = 0;
        } else if (nbits == 2) {
          j = nd.var >> 1;
          b = nd.var & 1;
        } else {
          j = nd.var / nbits;
          b = nd.var % nbits;
        }
        const std::uint32_t code = code_value(ct, j, batch.at(j, i));
        ref = nd.child[(code >> (nbits - 1 - b)) & 1U];
      }
      out[i] = ref == 1;
    }
    return;
  }
  const std::size_t W = ct.num_words();
  const std::size_t num_nodes = p.nodes.size();
  // Support mask: neurons none of whose variables label a node never
  // influence a verdict, so coding skips them (robust sets drop many).
  s.needed.assign(W, 0ULL);
  for (std::size_t k = 0; k < num_nodes; ++k) {
    s.needed[nodes[k].var >> 6] |= 1ULL << (nodes[k].var & 63);
  }
  fill_words(ct, batch, s, s.needed.data());
  const std::uint64_t* words = s.words.data();
  // Bit-parallel bottom-up sweep, 64 samples per block: transpose the
  // block's codewords into one u64 lane per variable (bit i = sample
  // i's value), then evaluate every node exactly once per block with
  // three bitwise ops — vals[k] = (lane & hi) | (~lane & lo) — walking
  // the array backwards so children (strictly larger refs) are already
  // resolved. Per 64 samples this costs O(nodes), versus O(sum of path
  // lengths) for a per-sample walk: the whole block shares one sweep
  // instead of chasing 64 separate root-to-terminal chains.
  s.vals.resize(num_nodes);
  s.varbits.resize(W * 64);
  for (std::size_t base = 0; base < n; base += kLane) {
    const std::size_t count = std::min(kLane, n - base);
    for (std::size_t w = 0; w < W; ++w) {
      std::uint64_t col[kLane];
      for (std::size_t i = 0; i < count; ++i) {
        col[i] = words[(base + i) * W + w];
      }
      for (std::size_t i = count; i < kLane; ++i) col[i] = 0;
      transpose64(col);
      std::copy(col, col + kLane, s.varbits.data() + w * 64);
    }
    const std::uint64_t* varbits = s.varbits.data();
    std::uint64_t* vals = s.vals.data();
    for (std::size_t k = num_nodes; k-- > 0;) {
      const FlatBddNode& nd = nodes[k];
      const std::uint32_t c0 = nd.child[0];
      const std::uint32_t c1 = nd.child[1];
      const std::uint64_t v0 = c0 < 2 ? (c0 != 0 ? ~0ULL : 0ULL) : vals[c0 - 2];
      const std::uint64_t v1 = c1 < 2 ? (c1 != 0 ? ~0ULL : 0ULL) : vals[c1 - 2];
      const std::uint64_t lane = varbits[nd.var];
      vals[k] = (lane & v1) | (~lane & v0);
    }
    const std::uint64_t r = vals[p.root - 2];
    for (std::size_t i = 0; i < count; ++i) {
      out[base + i] = ((r >> i) & 1ULL) != 0;
    }
  }
}

}  // namespace

void eval_unit(const CompiledUnit& unit, const FeatureBatch& batch,
               bool* out, EvalScratch& scratch) {
  if (batch.dimension() != unit.dimension()) {
    throw std::invalid_argument("eval_unit: dimension mismatch");
  }
  if (batch.empty()) return;
  switch (unit.kind) {
    case ProgramKind::kBox:
      eval_box(unit.box, batch, out, scratch);
      return;
    case ProgramKind::kCube:
      eval_cube(unit.coding, unit.cube, batch, out, scratch);
      return;
    case ProgramKind::kBdd:
      eval_bdd(unit.coding, unit.bdd, batch, out, scratch);
      return;
  }
  throw std::logic_error("eval_unit: corrupt program kind");
}

}  // namespace ranm::compile
