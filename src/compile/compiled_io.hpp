// RCM1: the versioned on-disk artifact of a compiled monitor.
//
// Layout (little-endian, after the magic):
//
//   u32  version (1)
//   u64  dim                    feature-space dimension
//   u64  shard_count            1..4096
//   str  source                 provenance describe(), <= 256 bytes
//   per shard:
//     u64  neuron_count         0 = identity (single-shard only)
//     u32  neuron ids           neuron_count entries, each < dim
//     u32  program kind         1 = box, 2 = cube, 3 = bdd
//     u64  unit dim             must match the shard's neuron count
//     box:  u64 num_boxes, u8 reject_nan, f32 lo[], f32 hi[] (box-major)
//     cube/bdd: coding table (u64 bits, then per neuron 2^bits - 1
//       threshold values (f32) + inclusivity flags (u8))
//     cube: u64 num_cubes, per cube W mask words + W value words
//       (W derived from dim and bits, never read from the stream)
//     bdd:  u64 node_count, u32 root, per node u32 var + u32 lo + u32 hi
//
// Every count goes through the io/wire bounded reads *before* anything
// allocates from it, and the BDD loader re-validates the structural
// invariants evaluation termination rests on: child refs are terminals or
// strictly larger than their parent's ref, vars are in range, and the
// root is in bounds. A corrupted artifact fails loudly on the check — the
// PR 1 loader-bug class must not recur here.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "compile/compiled_monitor.hpp"

namespace ranm::compile {

/// "RCM1" artifact magic.
inline constexpr std::uint32_t kCompiledMagic = 0x52434D31U;

void save_compiled_monitor(std::ostream& out, const CompiledMonitor& monitor);
/// Loads a full RCM1 stream (magic included). Throws std::runtime_error
/// on malformed input.
[[nodiscard]] CompiledMonitor load_compiled_monitor(std::istream& in);
/// Loads the body after the magic word (load_any_monitor dispatch).
[[nodiscard]] CompiledMonitor load_compiled_body(std::istream& in);

}  // namespace ranm::compile
