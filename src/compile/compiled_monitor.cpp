#include "compile/compiled_monitor.hpp"

#include <stdexcept>

namespace ranm::compile {
namespace {

[[noreturn]] void throw_frozen(const char* what) {
  throw std::logic_error(std::string("CompiledMonitor::") + what +
                         ": compiled monitors are frozen — rebuild the "
                         "source monitor and recompile to observe new data");
}

}  // namespace

CompiledMonitor::CompiledMonitor(std::size_t dim, std::string source,
                                 std::vector<Shard> shards)
    : dim_(dim), source_(std::move(source)), shards_(std::move(shards)) {
  if (shards_.empty()) {
    throw std::invalid_argument("CompiledMonitor: no shards");
  }
  for (const Shard& sh : shards_) {
    if (sh.neurons.empty()) {
      if (shards_.size() != 1) {
        throw std::invalid_argument(
            "CompiledMonitor: identity shard requires shard_count == 1");
      }
      if (sh.unit.dimension() != dim_) {
        throw std::invalid_argument(
            "CompiledMonitor: identity shard dimension mismatch");
      }
    } else {
      if (sh.unit.dimension() != sh.neurons.size()) {
        throw std::invalid_argument(
            "CompiledMonitor: shard unit/neuron-list size mismatch");
      }
      for (const std::uint32_t j : sh.neurons) {
        if (j >= dim_) {
          throw std::invalid_argument(
              "CompiledMonitor: shard neuron id out of range");
        }
      }
    }
  }
  scratch_.resize(shards_.size());
}

void CompiledMonitor::observe(std::span<const float>) {
  throw_frozen("observe");
}
void CompiledMonitor::observe_bounds(std::span<const float>,
                                     std::span<const float>) {
  throw_frozen("observe_bounds");
}
void CompiledMonitor::observe_batch(const FeatureBatch&) {
  throw_frozen("observe_batch");
}
void CompiledMonitor::observe_bounds_batch(const FeatureBatch&,
                                           const FeatureBatch&) {
  throw_frozen("observe_bounds_batch");
}

bool CompiledMonitor::contains(std::span<const float> feature) const {
  if (feature.size() != dim_) {
    throw std::invalid_argument("CompiledMonitor::contains: dimension "
                                "mismatch");
  }
  FeatureBatch batch(dim_, 1);
  batch.set_sample(0, feature);
  bool out = false;
  contains_batch(batch, {&out, 1});
  return out;
}

void CompiledMonitor::eval_shard(std::size_t s, const FeatureBatch& batch,
                                 bool* out) const {
  const Shard& sh = shards_[s];
  if (sh.neurons.empty()) {
    eval_unit(sh.unit, batch, out, scratch_[s]);
  } else {
    const FeatureBatch view = batch.view_rows(sh.neurons);
    eval_unit(sh.unit, view, out, scratch_[s]);
  }
}

void CompiledMonitor::contains_batch(const FeatureBatch& batch,
                                     std::span<bool> out) const {
  check_batch(batch, out.size(), "CompiledMonitor::contains_batch");
  const std::size_t n = batch.size();
  if (n == 0) return;
  const std::size_t S = shards_.size();
  if (S == 1) {
    eval_shard(0, batch, out.data());
    return;
  }
  if (rows_capacity_ < S * n) {
    rows_scratch_ = std::make_unique<bool[]>(S * n);
    rows_capacity_ = S * n;
  }
  bool* rows = rows_scratch_.get();
  const auto run = [&](std::size_t s) { eval_shard(s, batch, rows + s * n); };
  if (pool_) {
    pool_->parallel_for(S, run);
  } else {
    for (std::size_t s = 0; s < S; ++s) run(s);
  }
  // Membership is the AND over shards, like ShardedMonitor.
  for (std::size_t i = 0; i < n; ++i) out[i] = rows[i];
  for (std::size_t s = 1; s < S; ++s) {
    const bool* row = rows + s * n;
    for (std::size_t i = 0; i < n; ++i) out[i] = out[i] && row[i];
  }
}

std::string CompiledMonitor::describe() const {
  return "CompiledMonitor(d=" + std::to_string(dim_) +
         ", shards=" + std::to_string(shards_.size()) +
         ", nodes=" + std::to_string(total_nodes()) +
         ", cubes=" + std::to_string(total_cubes()) + ", from=" + source_ +
         ")";
}

void CompiledMonitor::set_threads(std::size_t threads) {
  if (threads == 1) {
    pool_.reset();
  } else {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
}

std::size_t CompiledMonitor::total_nodes() const noexcept {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    if (sh.unit.kind == ProgramKind::kBdd) total += sh.unit.bdd.nodes.size();
  }
  return total;
}

std::size_t CompiledMonitor::total_cubes() const noexcept {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    if (sh.unit.kind == ProgramKind::kCube) total += sh.unit.cube.num_cubes;
  }
  return total;
}

}  // namespace ranm::compile
