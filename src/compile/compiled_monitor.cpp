#include "compile/compiled_monitor.hpp"

#include <algorithm>
#include <stdexcept>

namespace ranm::compile {
namespace {

[[noreturn]] void throw_frozen(const char* what) {
  throw std::logic_error(std::string("CompiledMonitor::") + what +
                         ": compiled monitors are frozen — rebuild the "
                         "source monitor and recompile to observe new data");
}

/// Rough per-sample op count of one unit's evaluator, for the pool-grain
/// test: box sweeps touch dim * boxes coordinates, coded programs pay
/// the threshold coding plus either the cube scan or the node sweep
/// (O(nodes) amortised over each 64-sample block).
std::size_t unit_cost_per_sample(const CompiledUnit& u) {
  switch (u.kind) {
    case ProgramKind::kBox:
      return u.box.dim * u.box.num_boxes;
    case ProgramKind::kCube:
      return u.coding.dim * u.coding.thresholds_per_neuron() +
             u.cube.num_cubes * u.coding.num_words();
    case ProgramKind::kBdd:
      return u.coding.dim * u.coding.thresholds_per_neuron() +
             u.bdd.nodes.size() / 16;
  }
  return 1;
}

}  // namespace

CompiledMonitor::CompiledMonitor(std::size_t dim, std::string source,
                                 std::vector<Shard> shards)
    : dim_(dim), source_(std::move(source)), shards_(std::move(shards)) {
  if (shards_.empty()) {
    throw std::invalid_argument("CompiledMonitor: no shards");
  }
  for (const Shard& sh : shards_) {
    if (sh.neurons.empty()) {
      if (shards_.size() != 1) {
        throw std::invalid_argument(
            "CompiledMonitor: identity shard requires shard_count == 1");
      }
      if (sh.unit.dimension() != dim_) {
        throw std::invalid_argument(
            "CompiledMonitor: identity shard dimension mismatch");
      }
    } else {
      if (sh.unit.dimension() != sh.neurons.size()) {
        throw std::invalid_argument(
            "CompiledMonitor: shard unit/neuron-list size mismatch");
      }
      for (const std::uint32_t j : sh.neurons) {
        if (j >= dim_) {
          throw std::invalid_argument(
              "CompiledMonitor: shard neuron id out of range");
        }
      }
    }
  }
  // Precompute the per-unit support masks (compiler and loader both come
  // through here, so every served unit has them).
  for (Shard& sh : shards_) {
    sh.unit.finalize();
    max_shard_cost_ = std::max(max_shard_cost_,
                               unit_cost_per_sample(sh.unit));
  }
  scratch_.resize(shards_.size());
}

void CompiledMonitor::observe(std::span<const float>) {
  throw_frozen("observe");
}
void CompiledMonitor::observe_bounds(std::span<const float>,
                                     std::span<const float>) {
  throw_frozen("observe_bounds");
}
void CompiledMonitor::observe_batch(const FeatureBatch&) {
  throw_frozen("observe_batch");
}
void CompiledMonitor::observe_bounds_batch(const FeatureBatch&,
                                           const FeatureBatch&) {
  throw_frozen("observe_bounds_batch");
}

bool CompiledMonitor::contains(std::span<const float> feature) const {
  if (feature.size() != dim_) {
    throw std::invalid_argument("CompiledMonitor::contains: dimension "
                                "mismatch");
  }
  FeatureBatch batch(dim_, 1);
  batch.set_sample(0, feature);
  bool out = false;
  contains_batch(batch, {&out, 1});
  return out;
}

void CompiledMonitor::eval_shard(std::size_t s, const FeatureBatch& batch,
                                 bool* out) const {
  // The neuron list doubles as eval_unit's row map, so a sharded query
  // reads its rows straight out of the full batch — no per-call row-view
  // construction (which allocates, and at batch 1 the allocations cost
  // more than the shard evaluations themselves).
  const Shard& sh = shards_[s];
  eval_unit(sh.unit, batch, sh.neurons.empty() ? nullptr : sh.neurons.data(),
            out, scratch_[s]);
}

void CompiledMonitor::contains_batch(const FeatureBatch& batch,
                                     std::span<bool> out) const {
  check_batch(batch, out.size(), "CompiledMonitor::contains_batch");
  const std::size_t n = batch.size();
  if (n == 0) return;
  const std::size_t S = shards_.size();
  if (S == 1) {
    eval_shard(0, batch, out.data());
    return;
  }
  if (n == 1) {
    // Single query (the serving path): no verdict matrix, no pool — one
    // stack verdict per shard, folded as it lands. Stops at the first
    // rejecting shard; membership is the AND over shards.
    bool verdict = true;
    for (std::size_t s = 0; s < S && verdict; ++s) {
      bool row = false;
      eval_shard(s, batch, &row);
      verdict = row;
    }
    out[0] = verdict;
    return;
  }
  if (rows_capacity_ < S * n) {
    rows_scratch_ = std::make_unique<bool[]>(S * n);
    rows_capacity_ = S * n;
  }
  bool* rows = rows_scratch_.get();
  const auto run = [&](std::size_t s) { eval_shard(s, batch, rows + s * n); };
  // Tiny batches — by sample count or by estimated per-shard work — run
  // inline even with a pool: waking the workers costs more than the
  // queries themselves (same floor as ShardedMonitor, plus a work grain
  // because compiled shards are often far cheaper than interpreted ones).
  if (pool_ && n >= kMinPoolBatch && n * max_shard_cost_ >= kMinPoolWork) {
    pool_->parallel_for(S, run);
  } else {
    for (std::size_t s = 0; s < S; ++s) run(s);
  }
  // Membership is the AND over shards, like ShardedMonitor.
  for (std::size_t i = 0; i < n; ++i) out[i] = rows[i];
  for (std::size_t s = 1; s < S; ++s) {
    const bool* row = rows + s * n;
    for (std::size_t i = 0; i < n; ++i) out[i] = out[i] && row[i];
  }
}

std::string CompiledMonitor::describe() const {
  return "CompiledMonitor(d=" + std::to_string(dim_) +
         ", shards=" + std::to_string(shards_.size()) +
         ", nodes=" + std::to_string(total_nodes()) +
         ", cubes=" + std::to_string(total_cubes()) + ", from=" + source_ +
         ")";
}

void CompiledMonitor::set_threads(std::size_t threads) {
  if (threads == 1) {
    pool_.reset();
  } else {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
}

std::size_t CompiledMonitor::total_nodes() const noexcept {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    if (sh.unit.kind == ProgramKind::kBdd) total += sh.unit.bdd.nodes.size();
  }
  return total;
}

std::size_t CompiledMonitor::total_cubes() const noexcept {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    if (sh.unit.kind == ProgramKind::kCube) total += sh.unit.cube.num_cubes;
  }
  return total;
}

}  // namespace ranm::compile
