#include "compile/lower.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "core/box_cluster_monitor.hpp"
#include "core/interval_monitor.hpp"
#include "core/minmax_monitor.hpp"
#include "core/onoff_monitor.hpp"
#include "core/sharded_monitor.hpp"
#include "core/threshold_spec.hpp"
#include "util/thread_pool.hpp"

namespace ranm::compile {
namespace {

CodingTable lower_coding(const ThresholdSpec& spec) {
  CodingTable ct;
  ct.dim = spec.dimension();
  ct.bits = spec.bits();
  const std::size_t m = ct.thresholds_per_neuron();
  ct.values.resize(ct.dim * m);
  ct.inclusive.resize(ct.dim * m);
  for (std::size_t j = 0; j < ct.dim; ++j) {
    const auto ts = spec.thresholds(j);
    for (std::size_t t = 0; t < m; ++t) {
      ct.values[j * m + t] = ts[t].value;
      ct.inclusive[j * m + t] = ts[t].inclusive_below ? 1 : 0;
    }
  }
  return ct;
}

/// Bounded cube-cover extraction: DFS over the BDD, one cube per path to
/// TRUE, variables not on the path as don't-cares (mask bit clear).
/// Aborts (returns false) past `cube_limit` covers or past the work
/// bound — path counts can blow up combinatorially on dense sets even
/// when the node count is small, so the visit counter, not just the cube
/// counter, bounds the enumeration.
///
/// The source BDD's variable index is its *level*; the compiled program's
/// bit positions are semantic *slots* (the CodingTable layout), so each
/// constrained variable goes through `slot_of_level` — identity unless
/// the monitor was reordered by `ranm_cli optimize`.
bool extract_cubes(const bdd::BddManager& mgr, bdd::NodeRef root,
                   std::span<const std::uint32_t> slot_of_level,
                   std::size_t num_vars, std::size_t num_words,
                   std::size_t cube_limit, CubeProgram& out) {
  out.num_cubes = 0;
  out.mask.clear();
  out.value.clear();
  if (root == bdd::kFalse) return true;  // empty cover: nothing matches
  if (root == bdd::kTrue) {
    // One all-don't-care cube: everything matches.
    out.num_cubes = 1;
    out.mask.assign(num_words, 0ULL);
    out.value.assign(num_words, 0ULL);
    return cube_limit >= 1;
  }
  std::vector<std::uint64_t> mask(num_words, 0ULL), value(num_words, 0ULL);
  struct Frame {
    bdd::NodeRef ref;
    int next_child;  // 0, 1, then 2 = done
  };
  std::vector<Frame> stack{{root, 0}};
  // Each accepted cube is one root-to-TRUE path of at most num_vars
  // nodes, and the DFS touches every node on it a constant number of
  // times (descend twice, unwind once, plus dead-end FALSE probes), so a
  // cover of cube_limit cubes legitimately costs O(num_vars * cube_limit)
  // visits. Anything past that is the combinatorial path blow-up the
  // bound exists to cut off.
  const std::size_t work_limit =
      3 * std::max<std::size_t>(num_vars, 64) * (cube_limit + 1) + 1024;
  std::size_t visits = 0;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const bdd::BddManager::NodeView nv = mgr.view(f.ref);
    const std::uint32_t slot = slot_of_level[nv.var];
    const std::size_t w = slot >> 6;
    const std::uint64_t bit = 1ULL << (slot & 63);
    if (f.next_child == 0) mask[w] |= bit;  // entering: var constrained
    if (f.next_child == 2) {                // leaving: var free again
      mask[w] &= ~bit;
      value[w] &= ~bit;
      stack.pop_back();
      continue;
    }
    const bool polarity = f.next_child == 1;
    ++f.next_child;
    if (polarity) {
      value[w] |= bit;
    } else {
      value[w] &= ~bit;
    }
    if (++visits > work_limit) return false;
    const bdd::NodeRef child = polarity ? nv.hi : nv.lo;
    if (child == bdd::kFalse) continue;
    if (child == bdd::kTrue) {
      if (++out.num_cubes > cube_limit) return false;
      out.mask.insert(out.mask.end(), mask.begin(), mask.end());
      out.value.insert(out.value.end(), value.begin(), value.end());
      continue;
    }
    stack.push_back({child, 0});
  }
  return true;
}

/// Flattens the nodes reachable from `root` into level-ascending order.
/// The BDD is level-ordered (children strictly deeper than parents), so
/// sorting by *level* puts every child after its parent — the flat refs
/// then satisfy the child > parent invariant the loader re-validates.
/// Level order also keeps consecutive nodes' children clustered in the
/// next level's block, which the bit-parallel bottom-up sweep depends
/// on: its vals[child] loads stay in a narrow window. (A reverse-DFS
/// layout that makes per-sample walks stride-1 was tried and scatters
/// those loads instead — the full-block sweep nearly doubled in cost
/// for a walk gain the branch-speculated select already provides.)
/// The emitted FlatBddNode::var is the semantic slot (via slot_of_level),
/// which under a custom order is not monotone in flat position — only
/// the refs must be, and they are.
BddProgram flatten_bdd(const bdd::BddManager& mgr, bdd::NodeRef root,
                       std::span<const std::uint32_t> slot_of_level) {
  BddProgram p;
  if (root == bdd::kFalse || root == bdd::kTrue) {
    p.root = root;
    return p;
  }
  std::vector<bdd::NodeRef> reach;
  std::vector<bdd::NodeRef> pending{root};
  std::unordered_map<bdd::NodeRef, std::uint32_t> remap;
  while (!pending.empty()) {
    const bdd::NodeRef r = pending.back();
    pending.pop_back();
    if (remap.contains(r)) continue;
    remap.emplace(r, 0);  // placeholder; final refs assigned after sorting
    reach.push_back(r);
    const bdd::BddManager::NodeView nv = mgr.view(r);
    if (nv.lo >= 2) pending.push_back(nv.lo);
    if (nv.hi >= 2) pending.push_back(nv.hi);
  }
  std::stable_sort(reach.begin(), reach.end(),
                   [&mgr](bdd::NodeRef a, bdd::NodeRef b) {
                     return mgr.view(a).var < mgr.view(b).var;
                   });
  for (std::size_t i = 0; i < reach.size(); ++i) {
    remap[reach[i]] = static_cast<std::uint32_t>(i + 2);
  }
  const auto flat_ref = [&remap](bdd::NodeRef r) {
    return r < 2 ? static_cast<std::uint32_t>(r) : remap.at(r);
  };
  p.nodes.resize(reach.size());
  for (std::size_t i = 0; i < reach.size(); ++i) {
    const bdd::BddManager::NodeView nv = mgr.view(reach[i]);
    p.nodes[i].var = slot_of_level[nv.var];
    p.nodes[i].child[0] = flat_ref(nv.lo);
    p.nodes[i].child[1] = flat_ref(nv.hi);
  }
  p.root = flat_ref(root);
  return p;
}

CompiledUnit lower_bdd_set(const bdd::BddManager& mgr, bdd::NodeRef root,
                           std::span<const std::uint32_t> slot_of_level,
                           const ThresholdSpec& spec,
                           std::size_t cube_limit) {
  CompiledUnit unit;
  unit.coding = lower_coding(spec);
  if (extract_cubes(mgr, root, slot_of_level, unit.coding.num_vars(),
                    unit.coding.num_words(), cube_limit, unit.cube)) {
    unit.kind = ProgramKind::kCube;
    return unit;
  }
  unit.cube = CubeProgram{};
  unit.kind = ProgramKind::kBdd;
  unit.bdd = flatten_bdd(mgr, root, slot_of_level);
  return unit;
}

/// Lowers one non-sharded monitor into a unit (the per-shard workhorse).
CompiledUnit lower_flat(const Monitor& monitor, std::size_t cube_limit) {
  if (const auto* mm = dynamic_cast<const MinMaxMonitor*>(&monitor)) {
    CompiledUnit unit;
    unit.kind = ProgramKind::kBox;
    unit.box.dim = mm->dimension();
    unit.box.num_boxes = 1;
    unit.box.reject_nan = false;  // NaN contained, like the source
    unit.box.lo.resize(unit.box.dim);
    unit.box.hi.resize(unit.box.dim);
    for (std::size_t j = 0; j < unit.box.dim; ++j) {
      unit.box.lo[j] = mm->lower(j);
      unit.box.hi[j] = mm->upper(j);
    }
    return unit;
  }
  if (const auto* bc = dynamic_cast<const BoxClusterMonitor*>(&monitor)) {
    const auto& boxes = bc->boxes();  // throws logic_error pre-finalize
    CompiledUnit unit;
    unit.kind = ProgramKind::kBox;
    unit.box.dim = bc->dimension();
    unit.box.num_boxes = boxes.size();
    unit.box.reject_nan = true;  // NaN rejected, like the source
    unit.box.lo.resize(unit.box.num_boxes * unit.box.dim);
    unit.box.hi.resize(unit.box.num_boxes * unit.box.dim);
    for (std::size_t b = 0; b < boxes.size(); ++b) {
      for (std::size_t j = 0; j < unit.box.dim; ++j) {
        unit.box.lo[b * unit.box.dim + j] = boxes[b][j].lo;
        unit.box.hi[b * unit.box.dim + j] = boxes[b][j].hi;
      }
    }
    return unit;
  }
  if (const auto* oo = dynamic_cast<const OnOffMonitor*>(&monitor)) {
    return lower_bdd_set(oo->manager(), oo->root(), oo->slot_of_level(),
                         oo->spec(), cube_limit);
  }
  if (const auto* iv = dynamic_cast<const IntervalMonitor*>(&monitor)) {
    return lower_bdd_set(iv->manager(), iv->root(), iv->slot_of_level(),
                         iv->spec(), cube_limit);
  }
  throw std::invalid_argument("compile_monitor: unsupported monitor type " +
                              monitor.describe());
}

}  // namespace

CompiledMonitor compile_monitor(const Monitor& monitor,
                                const CompileOptions& options) {
  if (const auto* sh = dynamic_cast<const ShardedMonitor*>(&monitor)) {
    const ShardPlan& plan = sh->plan();
    std::vector<CompiledMonitor::Shard> shards(plan.shard_count());
    const auto lower_one = [&](std::size_t s) {
      const auto neurons = plan.neurons(s);
      shards[s].neurons.assign(neurons.begin(), neurons.end());
      shards[s].unit = lower_flat(sh->shard(s), options.cube_limit);
    };
    if (options.threads == 1) {
      for (std::size_t s = 0; s < shards.size(); ++s) lower_one(s);
    } else {
      // Each task reads one shard's private manager and writes one slot:
      // race-free fan-out, same shape as the sharded query path.
      ThreadPool pool(options.threads);
      pool.parallel_for(shards.size(), lower_one);
    }
    return CompiledMonitor(plan.dimension(), sh->describe(),
                           std::move(shards));
  }
  std::vector<CompiledMonitor::Shard> shards(1);
  shards[0].unit = lower_flat(monitor, options.cube_limit);
  return CompiledMonitor(monitor.dimension(), monitor.describe(),
                         std::move(shards));
}

}  // namespace ranm::compile
