#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace ranm {

Optimizer::Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads)
    : params_(std::move(params)), grads_(std::move(grads)) {
  if (params_.size() != grads_.size()) {
    throw std::invalid_argument("Optimizer: params/grads count mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i] || !grads_[i]) {
      throw std::invalid_argument("Optimizer: null tensor pointer");
    }
    if (params_[i]->shape() != grads_[i]->shape()) {
      throw std::invalid_argument("Optimizer: param/grad shape mismatch");
    }
  }
}

void Optimizer::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    update(i, *params_[i], *grads_[i]);
    grads_[i]->zero();
  }
}

SGD::SGD(std::vector<Tensor*> params, std::vector<Tensor*> grads,
         const Config& cfg)
    : Optimizer(std::move(params), std::move(grads)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (Tensor* p : params_) velocity_.emplace_back(p->shape());
}

void SGD::update(std::size_t i, Tensor& param, const Tensor& grad) {
  Tensor& vel = velocity_[i];
  for (std::size_t j = 0; j < param.numel(); ++j) {
    const float g = grad[j] + cfg_.weight_decay * param[j];
    vel[j] = cfg_.momentum * vel[j] - cfg_.learning_rate * g;
    param[j] += vel[j];
  }
}

Adam::Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads,
           const Config& cfg)
    : Optimizer(std::move(params), std::move(grads)), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Tensor* p : params_) {
    m_.emplace_back(p->shape());
    v_.emplace_back(p->shape());
  }
}

void Adam::update(std::size_t i, Tensor& param, const Tensor& grad) {
  // One global timestep per step() call: bump when the first parameter of
  // the round is updated.
  if (i == 0 || t_ == 0) ++t_;
  const auto t = static_cast<float>(t_);
  const float bc1 = 1.0F - std::pow(cfg_.beta1, t);
  const float bc2 = 1.0F - std::pow(cfg_.beta2, t);
  Tensor& m = m_[i];
  Tensor& v = v_[i];
  for (std::size_t j = 0; j < param.numel(); ++j) {
    const float g = grad[j] + cfg_.weight_decay * param[j];
    m[j] = cfg_.beta1 * m[j] + (1.0F - cfg_.beta1) * g;
    v[j] = cfg_.beta2 * v[j] + (1.0F - cfg_.beta2) * g * g;
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    param[j] -= cfg_.learning_rate * mhat / (std::sqrt(vhat) + cfg_.epsilon);
  }
}

}  // namespace ranm
