#include "nn/trainer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "nn/optimizer.hpp"

namespace ranm {

std::vector<EpochStats> train(Network& net, Optimizer& optimizer,
                              const Loss& loss,
                              const std::vector<Tensor>& inputs,
                              const std::vector<Tensor>& targets,
                              const TrainConfig& cfg, Rng& rng) {
  if (inputs.size() != targets.size()) {
    throw std::invalid_argument("train: inputs/targets size mismatch");
  }
  if (inputs.empty()) throw std::invalid_argument("train: empty dataset");
  if (cfg.batch_size == 0) {
    throw std::invalid_argument("train: zero batch size");
  }

  std::vector<EpochStats> history;
  history.reserve(cfg.epochs);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = rng.permutation(inputs.size());
    double epoch_loss = 0.0;
    std::size_t batch_count = 0;
    net.zero_gradients();
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::size_t idx = order[pos];
      const Tensor pred = net.forward(inputs[idx]);
      LossResult lr = loss.evaluate(pred, targets[idx]);
      epoch_loss += lr.value;
      lr.grad *= 1.0F / static_cast<float>(cfg.batch_size);
      (void)net.backward(lr.grad);
      ++batch_count;
      if (batch_count == cfg.batch_size || pos + 1 == order.size()) {
        optimizer.step();  // also zeroes the gradient accumulators
        batch_count = 0;
      }
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss =
        static_cast<float>(epoch_loss / double(inputs.size()));
    if (cfg.on_epoch) cfg.on_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

float evaluate_loss(Network& net, const Loss& loss,
                    const std::vector<Tensor>& inputs,
                    const std::vector<Tensor>& targets) {
  if (inputs.size() != targets.size() || inputs.empty()) {
    throw std::invalid_argument("evaluate_loss: bad dataset");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    acc += loss.evaluate(net.forward(inputs[i]), targets[i]).value;
  }
  return static_cast<float>(acc / double(inputs.size()));
}

float evaluate_accuracy(Network& net, const std::vector<Tensor>& inputs,
                        const std::vector<Tensor>& targets) {
  if (inputs.size() != targets.size() || inputs.empty()) {
    throw std::invalid_argument("evaluate_accuracy: bad dataset");
  }
  // Batched forward pass; argmax runs class-major over the batch rows.
  constexpr std::size_t kChunk = 256;
  std::size_t correct = 0;
  std::vector<float> best;
  std::vector<std::size_t> best_idx;
  for (std::size_t start = 0; start < inputs.size(); start += kChunk) {
    const std::size_t n = std::min(kChunk, inputs.size() - start);
    const FeatureBatch preds =
        net.forward_batch({inputs.data() + start, n});
    best.assign(n, -std::numeric_limits<float>::infinity());
    best_idx.assign(n, 0);
    for (std::size_t c = 0; c < preds.dimension(); ++c) {
      const auto row = preds.neuron(c);
      for (std::size_t i = 0; i < n; ++i) {
        if (row[i] > best[i]) {
          best[i] = row[i];
          best_idx[i] = c;
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (best_idx[i] == static_cast<std::size_t>(targets[start + i][0])) {
        ++correct;
      }
    }
  }
  return static_cast<float>(correct) / static_cast<float>(inputs.size());
}

}  // namespace ranm
