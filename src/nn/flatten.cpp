#include "nn/flatten.hpp"

#include <stdexcept>

namespace ranm {

Flatten::Flatten(Shape in_shape) : in_shape_(std::move(in_shape)) {
  if (shape_numel(in_shape_) == 0) {
    throw std::invalid_argument("Flatten: empty shape");
  }
}

Tensor Flatten::forward(const Tensor& x) {
  if (x.numel() != input_size()) {
    throw std::invalid_argument("Flatten: input size mismatch");
  }
  return x.reshaped({x.numel()});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  if (grad_out.numel() != input_size()) {
    throw std::invalid_argument("Flatten: gradient size mismatch");
  }
  return grad_out.reshaped(in_shape_);
}

IntervalVector Flatten::propagate(const IntervalVector& in) const {
  return in;
}

Zonotope Flatten::propagate(const Zonotope& in) const { return in; }

BoxBatch Flatten::propagate_batch(const BoundBackend& /*backend*/,
                                  const BoxBatch& in) const {
  return in;  // identity on data; BoxBatch is already flat
}

}  // namespace ranm
