#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace ranm {

LossResult MSELoss::evaluate(const Tensor& prediction,
                             const Tensor& target) const {
  if (prediction.numel() != target.numel()) {
    throw std::invalid_argument("MSELoss: size mismatch");
  }
  const std::size_t d = prediction.numel();
  LossResult r;
  r.grad = Tensor({d});
  double acc = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const float e = prediction[i] - target[i];
    acc += double(e) * e;
    r.grad[i] = 2.0F * e / static_cast<float>(d);
  }
  r.value = static_cast<float>(acc / double(d));
  return r;
}

Tensor softmax(const Tensor& logits) {
  const std::size_t d = logits.numel();
  if (d == 0) throw std::invalid_argument("softmax: empty input");
  Tensor p({d});
  const float m = logits.max();
  double z = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    p[i] = std::exp(logits[i] - m);
    z += p[i];
  }
  const float inv = static_cast<float>(1.0 / z);
  for (std::size_t i = 0; i < d; ++i) p[i] *= inv;
  return p;
}

LossResult SoftmaxCrossEntropyLoss::evaluate(const Tensor& logits,
                                             const Tensor& target) const {
  if (target.numel() < 1) {
    throw std::invalid_argument("SoftmaxCrossEntropyLoss: empty target");
  }
  const auto cls = static_cast<std::size_t>(target[0]);
  const std::size_t d = logits.numel();
  if (cls >= d) {
    throw std::invalid_argument(
        "SoftmaxCrossEntropyLoss: class index out of range");
  }
  Tensor p = softmax(logits);
  LossResult r;
  r.value = -std::log(std::max(p[cls], 1e-12F));
  r.grad = p;
  r.grad[cls] -= 1.0F;
  return r;
}

}  // namespace ranm
