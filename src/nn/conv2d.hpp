// 2-D convolution layer over CHW images.
#pragma once

#include "nn/layer.hpp"

namespace ranm {

/// Convolution with square-free (kh x kw) kernels, integer stride, and
/// symmetric zero padding. Input and output are CHW tensors; the abstract
/// transformers view them as flat row-major vectors.
class Conv2D final : public Layer {
 public:
  struct Config {
    std::size_t in_channels;
    std::size_t in_height;
    std::size_t in_width;
    std::size_t out_channels;
    std::size_t kernel_h = 3;
    std::size_t kernel_w = 3;
    std::size_t stride = 1;
    std::size_t padding = 0;
  };

  explicit Conv2D(const Config& cfg);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Shape input_shape() const override;
  [[nodiscard]] Shape output_shape() const override;

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

  [[nodiscard]] std::vector<Tensor*> parameters() override {
    return {&w_, &b_};
  }
  [[nodiscard]] std::vector<Tensor*> gradients() override {
    return {&gw_, &gb_};
  }
  void init_params(Rng& rng) override;

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t out_height() const noexcept { return oh_; }
  [[nodiscard]] std::size_t out_width() const noexcept { return ow_; }
  [[nodiscard]] Tensor& weights() noexcept { return w_; }
  [[nodiscard]] Tensor& bias() noexcept { return b_; }

 private:
  /// Applies the convolution's linear part (no bias) to a flat CHW input.
  void linear_apply(const float* in, float* out) const noexcept;

  Config cfg_;
  std::size_t oh_, ow_;
  Tensor w_;   // (out_c, in_c, kh, kw)
  Tensor b_;   // (out_c)
  Tensor gw_, gb_;
  Tensor last_in_;
};

}  // namespace ranm
