#include "nn/conv2d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/rng.hpp"

namespace ranm {

Conv2D::Conv2D(const Config& cfg)
    : cfg_(cfg),
      oh_(0),
      ow_(0),
      w_({cfg.out_channels, cfg.in_channels, cfg.kernel_h, cfg.kernel_w}),
      b_({cfg.out_channels}),
      gw_({cfg.out_channels, cfg.in_channels, cfg.kernel_h, cfg.kernel_w}),
      gb_({cfg.out_channels}) {
  if (cfg.in_channels == 0 || cfg.out_channels == 0 || cfg.kernel_h == 0 ||
      cfg.kernel_w == 0 || cfg.stride == 0) {
    throw std::invalid_argument("Conv2D: zero-sized configuration");
  }
  const std::size_t padded_h = cfg.in_height + 2 * cfg.padding;
  const std::size_t padded_w = cfg.in_width + 2 * cfg.padding;
  if (padded_h < cfg.kernel_h || padded_w < cfg.kernel_w) {
    throw std::invalid_argument("Conv2D: kernel larger than padded input");
  }
  oh_ = (padded_h - cfg.kernel_h) / cfg.stride + 1;
  ow_ = (padded_w - cfg.kernel_w) / cfg.stride + 1;
}

std::string Conv2D::name() const {
  return "Conv2D(" + std::to_string(cfg_.in_channels) + "x" +
         std::to_string(cfg_.in_height) + "x" + std::to_string(cfg_.in_width) +
         "->" + std::to_string(cfg_.out_channels) + "x" + std::to_string(oh_) +
         "x" + std::to_string(ow_) + ", k=" + std::to_string(cfg_.kernel_h) +
         "x" + std::to_string(cfg_.kernel_w) +
         ", s=" + std::to_string(cfg_.stride) +
         ", p=" + std::to_string(cfg_.padding) + ")";
}

Shape Conv2D::input_shape() const {
  return {cfg_.in_channels, cfg_.in_height, cfg_.in_width};
}

Shape Conv2D::output_shape() const { return {cfg_.out_channels, oh_, ow_}; }

void Conv2D::linear_apply(const float* in, float* out) const noexcept {
  const auto& c = cfg_;
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(c.padding);
  for (std::size_t oc = 0; oc < c.out_channels; ++oc) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        double acc = 0.0;
        for (std::size_t ic = 0; ic < c.in_channels; ++ic) {
          for (std::size_t ky = 0; ky < c.kernel_h; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * c.stride + ky) - pad;
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(c.in_height)) {
              continue;
            }
            for (std::size_t kx = 0; kx < c.kernel_w; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * c.stride + kx) - pad;
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(c.in_width)) {
                continue;
              }
              const float wv =
                  w_[((oc * c.in_channels + ic) * c.kernel_h + ky) *
                         c.kernel_w +
                     kx];
              acc += double(wv) *
                     in[(ic * c.in_height + std::size_t(iy)) * c.in_width +
                        std::size_t(ix)];
            }
          }
        }
        out[(oc * oh_ + oy) * ow_ + ox] = static_cast<float>(acc);
      }
    }
  }
}

Tensor Conv2D::forward(const Tensor& x) {
  if (x.numel() != input_size()) {
    throw std::invalid_argument(name() + ": input size mismatch");
  }
  last_in_ = x.rank() == 3 ? x : x.reshaped(input_shape());
  Tensor y(output_shape());
  linear_apply(last_in_.data(), y.data());
  for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
    float* plane = y.data() + oc * oh_ * ow_;
    for (std::size_t i = 0; i < oh_ * ow_; ++i) plane[i] += b_[oc];
  }
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  if (last_in_.empty()) {
    throw std::logic_error(name() + ": backward before forward");
  }
  if (grad_out.numel() != output_size()) {
    throw std::invalid_argument(name() + ": gradient size mismatch");
  }
  const auto& c = cfg_;
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(c.padding);
  Tensor grad_in(input_shape());
  const float* g = grad_out.data();
  const float* in = last_in_.data();
  for (std::size_t oc = 0; oc < c.out_channels; ++oc) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        const float gv = g[(oc * oh_ + oy) * ow_ + ox];
        if (gv == 0.0F) continue;
        gb_[oc] += gv;
        for (std::size_t ic = 0; ic < c.in_channels; ++ic) {
          for (std::size_t ky = 0; ky < c.kernel_h; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * c.stride + ky) - pad;
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(c.in_height)) {
              continue;
            }
            for (std::size_t kx = 0; kx < c.kernel_w; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * c.stride + kx) - pad;
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(c.in_width)) {
                continue;
              }
              const std::size_t widx =
                  ((oc * c.in_channels + ic) * c.kernel_h + ky) * c.kernel_w +
                  kx;
              const std::size_t iidx =
                  (ic * c.in_height + std::size_t(iy)) * c.in_width +
                  std::size_t(ix);
              gw_[widx] += gv * in[iidx];
              grad_in[iidx] += gv * w_[widx];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

IntervalVector Conv2D::propagate(const IntervalVector& in) const {
  if (in.size() != input_size()) {
    throw std::invalid_argument(name() + ": interval input size mismatch");
  }
  // Centre/radius form: centre goes through the affine map (with bias),
  // radius through |W|. Zero padding contributes (0, 0).
  std::vector<float> cen(in.size()), rad(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    cen[i] = in[i].center();
    rad[i] = in[i].radius();
  }
  const auto& c = cfg_;
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(c.padding);
  IntervalVector out(output_size());
  for (std::size_t oc = 0; oc < c.out_channels; ++oc) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        double acc_c = b_[oc];
        double acc_r = 0.0;
        for (std::size_t ic = 0; ic < c.in_channels; ++ic) {
          for (std::size_t ky = 0; ky < c.kernel_h; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * c.stride + ky) - pad;
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(c.in_height)) {
              continue;
            }
            for (std::size_t kx = 0; kx < c.kernel_w; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * c.stride + kx) - pad;
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(c.in_width)) {
                continue;
              }
              const float wv =
                  w_[((oc * c.in_channels + ic) * c.kernel_h + ky) *
                         c.kernel_w +
                     kx];
              const std::size_t iidx =
                  (ic * c.in_height + std::size_t(iy)) * c.in_width +
                  std::size_t(ix);
              acc_c += double(wv) * cen[iidx];
              acc_r += std::fabs(double(wv)) * rad[iidx];
            }
          }
        }
        out[(oc * oh_ + oy) * ow_ + ox] = Interval::make_unchecked(
            round_down(acc_c - acc_r), round_up(acc_c + acc_r));
      }
    }
  }
  return out;
}

Zonotope Conv2D::propagate(const Zonotope& in) const {
  if (in.dim() != input_size()) {
    throw std::invalid_argument(name() + ": zonotope input size mismatch");
  }
  const std::size_t od = output_size();
  std::vector<float> center(od);
  linear_apply(in.center().data(), center.data());
  for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
    for (std::size_t i = 0; i < oh_ * ow_; ++i) {
      center[oc * oh_ * ow_ + i] += b_[oc];
    }
  }
  const std::size_t ng = in.num_generators();
  std::vector<float> gens(ng * od);
  for (std::size_t i = 0; i < ng; ++i) {
    linear_apply(in.generator(i).data(), gens.data() + i * od);
  }
  return Zonotope(std::move(center), std::move(gens));
}

BoxBatch Conv2D::propagate_batch(const BoundBackend& backend,
                                 const BoxBatch& in) const {
  Conv2DGeometry g;
  g.in_channels = cfg_.in_channels;
  g.in_height = cfg_.in_height;
  g.in_width = cfg_.in_width;
  g.out_channels = cfg_.out_channels;
  g.out_height = oh_;
  g.out_width = ow_;
  g.kernel_h = cfg_.kernel_h;
  g.kernel_w = cfg_.kernel_w;
  g.stride = cfg_.stride;
  g.padding = cfg_.padding;
  return backend.conv2d(g, w_.span(), b_.span(), in);
}

void Conv2D::init_params(Rng& rng) {
  const float fan_in = static_cast<float>(cfg_.in_channels * cfg_.kernel_h *
                                          cfg_.kernel_w);
  const float stddev = std::sqrt(2.0F / fan_in);
  for (std::size_t i = 0; i < w_.numel(); ++i) {
    w_[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  b_.zero();
}

}  // namespace ranm
