// Weight-initialisation helpers and small network factories used by tests,
// examples and benches.
#pragma once

#include <memory>

#include "nn/network.hpp"

namespace ranm {

/// Builds an MLP with ReLU activations between Dense layers:
/// dims = {in, h1, ..., out}. The final Dense has no activation.
[[nodiscard]] Network make_mlp(const std::vector<std::size_t>& dims,
                               Rng& rng);

/// Builds a small conv net for 1xHxW images:
/// Conv(3x3, c1) + LeakyReLU + MaxPool2 + Flatten + Dense(hidden) +
/// LeakyReLU + Dense(out). LeakyReLU (not ReLU) keeps the monitored
/// hidden layer alive: a fully dead ReLU layer has constant features and
/// nothing to monitor — the "monitorability" concern the paper's
/// conclusion raises. Suitable for the racetrack and digit workloads.
[[nodiscard]] Network make_small_convnet(std::size_t height,
                                         std::size_t width,
                                         std::size_t conv_channels,
                                         std::size_t hidden,
                                         std::size_t out, Rng& rng);

}  // namespace ranm
