#include "nn/network.hpp"

#include <sstream>
#include <stdexcept>

namespace ranm {

void Network::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  if (!layers_.empty()) {
    const std::size_t expected = layers_.back()->output_size();
    if (layer->input_size() != expected) {
      throw std::invalid_argument(
          "Network::add: layer " + layer->name() + " expects input size " +
          std::to_string(layer->input_size()) + " but previous layer " +
          layers_.back()->name() + " produces " + std::to_string(expected));
    }
  }
  layers_.push_back(std::move(layer));
}

void Network::check_layer_index(std::size_t k, const char* what) const {
  if (k == 0 || k > layers_.size()) {
    throw std::invalid_argument(std::string("Network::") + what +
                                ": layer index " + std::to_string(k) +
                                " out of range 1.." +
                                std::to_string(layers_.size()));
  }
}

Layer& Network::layer(std::size_t k) {
  check_layer_index(k, "layer");
  return *layers_[k - 1];
}

const Layer& Network::layer(std::size_t k) const {
  check_layer_index(k, "layer");
  return *layers_[k - 1];
}

Shape Network::input_shape() const {
  if (layers_.empty()) throw std::logic_error("Network: no layers");
  return layers_.front()->input_shape();
}

Shape Network::output_shape() const {
  if (layers_.empty()) throw std::logic_error("Network: no layers");
  return layers_.back()->output_shape();
}

Tensor Network::forward(const Tensor& x) {
  return forward_to(layers_.size(), x);
}

Tensor Network::forward_to(std::size_t k, const Tensor& x) {
  if (k == 0) return x;
  check_layer_index(k, "forward_to");
  Tensor v = x;
  for (std::size_t i = 0; i < k; ++i) v = layers_[i]->forward(v);
  return v;
}

Tensor Network::forward_range(std::size_t l, std::size_t k, const Tensor& x) {
  check_layer_index(l, "forward_range");
  check_layer_index(k, "forward_range");
  if (l > k) throw std::invalid_argument("Network::forward_range: l > k");
  Tensor v = x;
  for (std::size_t i = l - 1; i < k; ++i) v = layers_[i]->forward(v);
  return v;
}

FeatureBatch Network::forward_batch(std::size_t k,
                                    std::span<const Tensor> inputs) {
  if (k != 0) check_layer_index(k, "forward_batch");
  if (inputs.empty()) {
    const std::size_t dim =
        k == 0 ? 0 : layers_[k - 1]->output_size();
    return FeatureBatch(dim, 0);
  }
  if (k == 0) {
    FeatureBatch out(inputs.front().numel(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      out.set_sample(i, inputs[i].span());
    }
    return out;
  }
  FeatureBatch out(layers_[k - 1]->output_size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Tensor v = inputs[i];
    for (std::size_t l = 0; l < k; ++l) v = layers_[l]->forward(v);
    out.set_sample(i, v.span());
  }
  return out;
}

FeatureBatch Network::forward_batch(std::span<const Tensor> inputs) {
  return forward_batch(layers_.size(), inputs);
}

Tensor Network::backward(const Tensor& grad_out) {
  if (layers_.empty()) throw std::logic_error("Network: no layers");
  Tensor g = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
  return g;
}

IntervalVector Network::propagate_box(std::size_t l, std::size_t k,
                                      const IntervalVector& in) const {
  check_layer_index(l, "propagate_box");
  check_layer_index(k, "propagate_box");
  if (l > k) throw std::invalid_argument("Network::propagate_box: l > k");
  IntervalVector v = in;
  for (std::size_t i = l - 1; i < k; ++i) v = layers_[i]->propagate(v);
  return v;
}

BoxBatch Network::propagate_box_batch(std::size_t l, std::size_t k,
                                      const BoxBatch& in,
                                      const BoundBackend& backend) const {
  check_layer_index(l, "propagate_box_batch");
  check_layer_index(k, "propagate_box_batch");
  if (l > k) {
    throw std::invalid_argument("Network::propagate_box_batch: l > k");
  }
  BoxBatch v = layers_[l - 1]->propagate_batch(backend, in);
  for (std::size_t i = l; i < k; ++i) {
    v = layers_[i]->propagate_batch(backend, v);
  }
  return v;
}

Zonotope Network::propagate_zonotope(std::size_t l, std::size_t k,
                                     const Zonotope& in) const {
  check_layer_index(l, "propagate_zonotope");
  check_layer_index(k, "propagate_zonotope");
  if (l > k) {
    throw std::invalid_argument("Network::propagate_zonotope: l > k");
  }
  Zonotope v = in;
  for (std::size_t i = l - 1; i < k; ++i) v = layers_[i]->propagate(v);
  return v;
}

std::vector<Tensor*> Network::parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Network::gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

std::size_t Network::num_parameters() {
  std::size_t n = 0;
  for (Tensor* p : parameters()) n += p->numel();
  return n;
}

void Network::zero_gradients() {
  for (Tensor* g : gradients()) g->zero();
}

void Network::init_params(Rng& rng) {
  for (auto& layer : layers_) layer->init_params(rng);
}

std::string Network::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    out << "  g" << (i + 1) << ": " << layers_[i]->name() << "  "
        << shape_str(layers_[i]->input_shape()) << " -> "
        << shape_str(layers_[i]->output_shape()) << '\n';
  }
  return out.str();
}

}  // namespace ranm
