// Training losses: mean squared error (waypoint regression) and softmax
// cross-entropy (classification).
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace ranm {

/// Result of a loss evaluation: scalar value plus gradient w.r.t. the
/// prediction.
struct LossResult {
  float value = 0.0F;
  Tensor grad;
};

/// Loss interface over a single (prediction, target) pair.
class Loss {
 public:
  virtual ~Loss() = default;
  [[nodiscard]] virtual LossResult evaluate(const Tensor& prediction,
                                            const Tensor& target) const = 0;
};

/// Mean squared error: (1/d) * sum_j (p_j - t_j)^2.
class MSELoss final : public Loss {
 public:
  [[nodiscard]] LossResult evaluate(const Tensor& prediction,
                                    const Tensor& target) const override;
};

/// Softmax followed by cross-entropy against a one-hot target. The target
/// tensor holds the class index in element 0 (an integer stored as float),
/// which avoids materialising one-hot vectors in datasets.
class SoftmaxCrossEntropyLoss final : public Loss {
 public:
  [[nodiscard]] LossResult evaluate(const Tensor& logits,
                                    const Tensor& target) const override;
};

/// Numerically-stable softmax of a rank-1 tensor.
[[nodiscard]] Tensor softmax(const Tensor& logits);

}  // namespace ranm
