// Elementwise activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.
#pragma once

#include "nn/layer.hpp"

namespace ranm {

/// Common base for shape-preserving elementwise activations.
class Activation : public Layer {
 public:
  explicit Activation(Shape shape);
  [[nodiscard]] Shape input_shape() const override { return shape_; }
  [[nodiscard]] Shape output_shape() const override { return shape_; }
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;

 protected:
  /// Scalar function value.
  [[nodiscard]] virtual float f(float v) const noexcept = 0;
  /// Scalar derivative, given input v and cached output y = f(v).
  [[nodiscard]] virtual float df(float v, float y) const noexcept = 0;

  Shape shape_;
  Tensor last_in_;
  Tensor last_out_;
};

/// Rectified linear unit: max(0, x).
class ReLU final : public Activation {
 public:
  explicit ReLU(Shape shape) : Activation(std::move(shape)) {}
  [[nodiscard]] std::string name() const override { return "ReLU"; }
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

 protected:
  [[nodiscard]] float f(float v) const noexcept override;
  [[nodiscard]] float df(float v, float y) const noexcept override;
};

/// Leaky rectified linear unit: x > 0 ? x : alpha * x.
class LeakyReLU final : public Activation {
 public:
  LeakyReLU(Shape shape, float alpha = 0.01F);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] float alpha() const noexcept { return alpha_; }
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

 protected:
  [[nodiscard]] float f(float v) const noexcept override;
  [[nodiscard]] float df(float v, float y) const noexcept override;

 private:
  float alpha_;
};

/// Logistic sigmoid: 1 / (1 + exp(-x)).
class Sigmoid final : public Activation {
 public:
  explicit Sigmoid(Shape shape) : Activation(std::move(shape)) {}
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

 protected:
  [[nodiscard]] float f(float v) const noexcept override;
  [[nodiscard]] float df(float v, float y) const noexcept override;
};

/// Hyperbolic tangent.
class Tanh final : public Activation {
 public:
  explicit Tanh(Shape shape) : Activation(std::move(shape)) {}
  [[nodiscard]] std::string name() const override { return "Tanh"; }
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

 protected:
  [[nodiscard]] float f(float v) const noexcept override;
  [[nodiscard]] float df(float v, float y) const noexcept override;
};

}  // namespace ranm
