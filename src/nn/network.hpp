// Sequential feed-forward network G = g_n ∘ ... ∘ g_1 with the paper's
// layer-slicing operators: G^k (prefix up to layer k) and G^{l↪k}
// (layers l..k), plus abstract-domain propagation over any slice.
#pragma once

#include <memory>
#include <span>

#include "core/feature_batch.hpp"
#include "nn/layer.hpp"

namespace ranm {

/// Owns an ordered list of layers. Layer indices follow the paper:
/// layers are numbered 1..n, G^0 is the identity (the input itself).
class Network {
 public:
  Network() = default;
  Network(Network&&) noexcept = default;
  Network& operator=(Network&&) noexcept = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Appends a layer; its input shape must match the current output shape.
  void add(std::unique_ptr<Layer> layer);

  /// Constructs a layer in place and appends it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }
  /// Layer k, 1-indexed as in the paper.
  [[nodiscard]] Layer& layer(std::size_t k);
  [[nodiscard]] const Layer& layer(std::size_t k) const;

  [[nodiscard]] Shape input_shape() const;
  [[nodiscard]] Shape output_shape() const;

  /// Full forward pass G(x).
  [[nodiscard]] Tensor forward(const Tensor& x);
  /// Prefix G^k(x): layers 1..k. k = 0 returns x unchanged.
  [[nodiscard]] Tensor forward_to(std::size_t k, const Tensor& x);
  /// Slice G^{l↪k}(x): layers l..k, 1 <= l <= k <= n. The input must have
  /// the shape expected by layer l.
  [[nodiscard]] Tensor forward_range(std::size_t l, std::size_t k,
                                     const Tensor& x);

  /// Batched feature extraction G^k over a minibatch: the layer-k
  /// activations of every input, produced in one pass and scattered
  /// straight into a dim × n FeatureBatch (no per-sample feature-vector
  /// allocations). k = 0 packs the flattened inputs themselves.
  [[nodiscard]] FeatureBatch forward_batch(std::size_t k,
                                           std::span<const Tensor> inputs);
  /// Full-network minibatch pass: forward_batch(num_layers(), inputs).
  [[nodiscard]] FeatureBatch forward_batch(std::span<const Tensor> inputs);

  /// Backward pass through all layers (after a full forward on the same
  /// sample); returns the gradient w.r.t. the input.
  [[nodiscard]] Tensor backward(const Tensor& grad_out);

  /// Sound box propagation through layers l..k (1 <= l <= k <= n).
  [[nodiscard]] IntervalVector propagate_box(std::size_t l, std::size_t k,
                                             const IntervalVector& in) const;
  /// Batched sound box propagation through layers l..k: every column of
  /// the BoxBatch is propagated in one pass using the given bound
  /// backend's batched layer kernels. Column i of the result contains
  /// G^{l↪k}(x) for every x in column i of `in`.
  [[nodiscard]] BoxBatch propagate_box_batch(std::size_t l, std::size_t k,
                                             const BoxBatch& in,
                                             const BoundBackend& backend) const;
  /// Sound zonotope propagation through layers l..k.
  [[nodiscard]] Zonotope propagate_zonotope(std::size_t l, std::size_t k,
                                            const Zonotope& in) const;

  /// All trainable parameters / gradients across layers.
  [[nodiscard]] std::vector<Tensor*> parameters();
  [[nodiscard]] std::vector<Tensor*> gradients();
  /// Total trainable scalar count.
  [[nodiscard]] std::size_t num_parameters();
  /// Sets all gradient accumulators to zero.
  void zero_gradients();
  /// He/Xavier-initialises every layer from the given generator.
  void init_params(Rng& rng);

  /// One line per layer.
  [[nodiscard]] std::string summary() const;

 private:
  void check_layer_index(std::size_t k, const char* what) const;

  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace ranm
