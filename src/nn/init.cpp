#include "nn/init.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"

namespace ranm {

Network make_mlp(const std::vector<std::size_t>& dims, Rng& rng) {
  if (dims.size() < 2) {
    throw std::invalid_argument("make_mlp: need at least in and out dims");
  }
  Network net;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    net.emplace<Dense>(dims[i], dims[i + 1]);
    if (i + 2 < dims.size()) net.emplace<ReLU>(Shape{dims[i + 1]});
  }
  net.init_params(rng);
  return net;
}

Network make_small_convnet(std::size_t height, std::size_t width,
                           std::size_t conv_channels, std::size_t hidden,
                           std::size_t out, Rng& rng) {
  Network net;
  Conv2D::Config conv_cfg;
  conv_cfg.in_channels = 1;
  conv_cfg.in_height = height;
  conv_cfg.in_width = width;
  conv_cfg.out_channels = conv_channels;
  conv_cfg.kernel_h = 3;
  conv_cfg.kernel_w = 3;
  conv_cfg.stride = 1;
  conv_cfg.padding = 1;
  auto& conv = net.emplace<Conv2D>(conv_cfg);
  net.emplace<LeakyReLU>(conv.output_shape(), 0.01F);

  Pooling::Config pool_cfg;
  pool_cfg.channels = conv_channels;
  pool_cfg.in_height = conv.out_height();
  pool_cfg.in_width = conv.out_width();
  pool_cfg.window = 2;
  pool_cfg.stride = 2;
  auto& pool = net.emplace<MaxPool2D>(pool_cfg);

  net.emplace<Flatten>(pool.output_shape());
  const std::size_t flat = shape_numel(pool.output_shape());
  net.emplace<Dense>(flat, hidden);
  net.emplace<LeakyReLU>(Shape{hidden}, 0.01F);
  net.emplace<Dense>(hidden, out);
  net.init_params(rng);
  return net;
}

}  // namespace ranm
