#include "nn/normalization.hpp"

#include <cmath>
#include <stdexcept>

namespace ranm {

Normalization::Normalization(Shape shape, std::vector<float> mean,
                             std::vector<float> inv_std)
    : shape_(std::move(shape)),
      mean_(std::move(mean)),
      inv_std_(std::move(inv_std)) {
  const std::size_t n = shape_numel(shape_);
  if (n == 0) throw std::invalid_argument("Normalization: empty shape");
  if (mean_.size() != n || inv_std_.size() != n) {
    throw std::invalid_argument("Normalization: statistics size mismatch");
  }
  for (float s : inv_std_) {
    if (!(s > 0.0F) || !std::isfinite(s)) {
      throw std::invalid_argument(
          "Normalization: inv_std must be positive and finite");
    }
  }
}

Normalization::Normalization(Shape shape, float mean, float inv_std)
    : Normalization(shape,
                    std::vector<float>(shape_numel(shape), mean),
                    std::vector<float>(shape_numel(shape), inv_std)) {}

Tensor Normalization::forward(const Tensor& x) {
  if (x.numel() != input_size()) {
    throw std::invalid_argument("Normalization: input size mismatch");
  }
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    y[i] = (y[i] - mean_[i]) * inv_std_[i];
  }
  return y;
}

Tensor Normalization::backward(const Tensor& grad_out) {
  if (grad_out.numel() != input_size()) {
    throw std::invalid_argument("Normalization: gradient size mismatch");
  }
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) g[i] *= inv_std_[i];
  return g;
}

IntervalVector Normalization::propagate(const IntervalVector& in) const {
  if (in.size() != input_size()) {
    throw std::invalid_argument(
        "Normalization: interval input size mismatch");
  }
  IntervalVector out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    // inv_std > 0, so the map is monotone; endpoints map to endpoints with
    // the same scalar expression the concrete path uses.
    out[i] = Interval::make_unchecked((in[i].lo - mean_[i]) * inv_std_[i],
                                      (in[i].hi - mean_[i]) * inv_std_[i]);
  }
  return out;
}

BoxBatch Normalization::propagate_batch(const BoundBackend& backend,
                                        const BoxBatch& in) const {
  return backend.normalize(mean_, inv_std_, in);
}

Zonotope Normalization::propagate(const Zonotope& in) const {
  if (in.dim() != input_size()) {
    throw std::invalid_argument(
        "Normalization: zonotope input size mismatch");
  }
  std::vector<float> shift(input_size());
  for (std::size_t i = 0; i < shift.size(); ++i) {
    shift[i] = -mean_[i] * inv_std_[i];
  }
  return in.scale_shift(inv_std_, shift);
}

}  // namespace ranm
