// Fully-connected layer: y = W x + b.
#pragma once

#include "nn/layer.hpp"

namespace ranm {

/// Affine layer with weight matrix W (out x in) and bias b (out).
class Dense final : public Layer {
 public:
  /// Creates a zero-initialised layer; call init_params to randomise.
  Dense(std::size_t in, std::size_t out);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Shape input_shape() const override { return {in_}; }
  [[nodiscard]] Shape output_shape() const override { return {out_}; }

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

  [[nodiscard]] std::vector<Tensor*> parameters() override {
    return {&w_, &b_};
  }
  [[nodiscard]] std::vector<Tensor*> gradients() override {
    return {&gw_, &gb_};
  }
  void init_params(Rng& rng) override;

  [[nodiscard]] Tensor& weights() noexcept { return w_; }
  [[nodiscard]] const Tensor& weights() const noexcept { return w_; }
  [[nodiscard]] Tensor& bias() noexcept { return b_; }
  [[nodiscard]] const Tensor& bias() const noexcept { return b_; }

 private:
  std::size_t in_, out_;
  Tensor w_, b_;    // parameters
  Tensor gw_, gb_;  // gradient accumulators
  Tensor last_in_;  // cached by forward for backward
};

}  // namespace ranm
