// Layer abstraction for the feed-forward DNN substrate.
//
// The paper models a trained DNN as G = g_n ∘ ... ∘ g_1 with fixed
// parameters. Each Layer here is one g_k. Besides the concrete forward
// pass, every layer implements two *abstract transformers* — one for the
// interval (box) domain and one for the zonotope domain — which is what
// lets the monitor construction compute the perturbation estimate of
// Definition 1 with either bound engine.
//
// Layers fix their input shape at construction time so that the abstract
// transformers can operate on flat vectors (row-major CHW order for
// convolutional layers).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "absint/bound_backend.hpp"
#include "absint/interval.hpp"
#include "absint/zonotope.hpp"
#include "tensor/tensor.hpp"

namespace ranm {

class Rng;

/// One transformation g_k of the network. Stateful across
/// forward()/backward() pairs (activations are cached for the gradient);
/// the abstract transformers and shape queries are const and reentrant.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Short human-readable identifier, e.g. "Dense(64->32)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Shape of the input this layer was constructed for.
  [[nodiscard]] virtual Shape input_shape() const = 0;
  /// Shape this layer produces.
  [[nodiscard]] virtual Shape output_shape() const = 0;
  /// Flattened input dimension.
  [[nodiscard]] std::size_t input_size() const {
    return shape_numel(input_shape());
  }
  /// Flattened output dimension.
  [[nodiscard]] std::size_t output_size() const {
    return shape_numel(output_shape());
  }

  /// Concrete forward pass. Caches whatever backward() needs.
  [[nodiscard]] virtual Tensor forward(const Tensor& x) = 0;

  /// Gradient of the loss w.r.t. this layer's input, given the gradient
  /// w.r.t. its output. Accumulates parameter gradients (+=). Must be
  /// called after forward() on the same sample.
  [[nodiscard]] virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Sound interval transfer function: the returned box contains
  /// g_k(x) for every x in the input box.
  [[nodiscard]] virtual IntervalVector propagate(
      const IntervalVector& in) const = 0;

  /// Sound zonotope transfer function.
  [[nodiscard]] virtual Zonotope propagate(const Zonotope& in) const = 0;

  /// Sound batched interval transfer: column i of the result contains
  /// g_k(x) for every x in column i of `in`. Concrete layers map this
  /// onto one of the backend's batched kernels; the base default falls
  /// back to the per-sample scalar propagate() (sound for any layer, but
  /// without the batched memory layout win).
  [[nodiscard]] virtual BoxBatch propagate_batch(const BoundBackend& backend,
                                                 const BoxBatch& in) const;

  /// Trainable parameter tensors (empty for stateless layers).
  [[nodiscard]] virtual std::vector<Tensor*> parameters() { return {}; }
  /// Gradient accumulators matching parameters() element-wise.
  [[nodiscard]] virtual std::vector<Tensor*> gradients() { return {}; }

  /// Re-randomises parameters with a scheme appropriate for the layer
  /// (He-normal for ReLU-family weight layers). No-op if parameterless.
  virtual void init_params(Rng& /*rng*/) {}
};

}  // namespace ranm
