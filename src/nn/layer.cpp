#include "nn/layer.hpp"

namespace ranm {

BoxBatch Layer::propagate_batch(const BoundBackend& /*backend*/,
                                const BoxBatch& in) const {
  // Scalar fallback: gather each sample's box, run the scalar transfer
  // function (which validates the dimension), scatter the result. Correct
  // for any layer; concrete layers override with a batched kernel.
  BoxBatch out(output_size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.set_box(i, propagate(in.box(i)));
  }
  return out;
}

}  // namespace ranm
