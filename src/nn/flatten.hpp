// Flatten layer: reshapes CHW feature maps to a rank-1 vector.
#pragma once

#include "nn/layer.hpp"

namespace ranm {

/// Identity on data; only the shape changes. Abstract transformers are
/// the identity because IntervalVector/Zonotope are already flat.
class Flatten final : public Layer {
 public:
  explicit Flatten(Shape in_shape);

  [[nodiscard]] std::string name() const override { return "Flatten"; }
  [[nodiscard]] Shape input_shape() const override { return in_shape_; }
  [[nodiscard]] Shape output_shape() const override {
    return {shape_numel(in_shape_)};
  }

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

 private:
  Shape in_shape_;
};

}  // namespace ranm
