#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/linalg.hpp"
#include "util/rng.hpp"

namespace ranm {

Dense::Dense(std::size_t in, std::size_t out)
    : in_(in),
      out_(out),
      w_({out, in}),
      b_({out}),
      gw_({out, in}),
      gb_({out}) {
  if (in == 0 || out == 0) {
    throw std::invalid_argument("Dense: zero dimension");
  }
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

Tensor Dense::forward(const Tensor& x) {
  if (x.numel() != in_) {
    throw std::invalid_argument(name() + ": input has " +
                                std::to_string(x.numel()) + " elements");
  }
  last_in_ = x.rank() == 1 ? x : x.reshaped({in_});
  Tensor y = matvec(w_, last_in_);
  y += b_;
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  if (grad_out.numel() != out_) {
    throw std::invalid_argument(name() + ": gradient size mismatch");
  }
  if (last_in_.empty()) {
    throw std::logic_error(name() + ": backward before forward");
  }
  const Tensor g = grad_out.rank() == 1 ? grad_out : grad_out.reshaped({out_});
  gw_ += outer(g, last_in_);
  gb_ += g;
  return matvec_t(w_, g);
}

IntervalVector Dense::propagate(const IntervalVector& in) const {
  if (in.size() != in_) {
    throw std::invalid_argument(name() + ": interval input size mismatch");
  }
  IntervalVector out(out_);
  for (std::size_t r = 0; r < out_; ++r) {
    // Centre/radius form avoids 2x min/max per term.
    double c = b_[r], rad = 0.0;
    const float* row = w_.data() + r * in_;
    for (std::size_t j = 0; j < in_; ++j) {
      c += double(row[j]) * in[j].center();
      rad += std::fabs(double(row[j])) * in[j].radius();
    }
    out[r] = Interval::make_unchecked(round_down(c - rad), round_up(c + rad));
  }
  return out;
}

Zonotope Dense::propagate(const Zonotope& in) const {
  if (in.dim() != in_) {
    throw std::invalid_argument(name() + ": zonotope input size mismatch");
  }
  return in.affine(w_.span(), out_, b_.span());
}

BoxBatch Dense::propagate_batch(const BoundBackend& backend,
                                const BoxBatch& in) const {
  return backend.affine(w_.span(), out_, in_, b_.span(), in);
}

void Dense::init_params(Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(in_));
  for (std::size_t i = 0; i < w_.numel(); ++i) {
    w_[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  b_.zero();
}

}  // namespace ranm
