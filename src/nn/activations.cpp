#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace ranm {

Activation::Activation(Shape shape) : shape_(std::move(shape)) {
  if (shape_numel(shape_) == 0) {
    throw std::invalid_argument("Activation: empty shape");
  }
}

Tensor Activation::forward(const Tensor& x) {
  if (x.numel() != shape_numel(shape_)) {
    throw std::invalid_argument(name() + ": input size mismatch");
  }
  last_in_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = f(y[i]);
  last_out_ = y;
  return y;
}

Tensor Activation::backward(const Tensor& grad_out) {
  if (last_in_.empty()) {
    throw std::logic_error(name() + ": backward before forward");
  }
  if (grad_out.numel() != last_in_.numel()) {
    throw std::invalid_argument(name() + ": gradient size mismatch");
  }
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    g[i] *= df(last_in_[i], last_out_[i]);
  }
  return g;
}

// ---- ReLU -----------------------------------------------------------------

float ReLU::f(float v) const noexcept { return v > 0.0F ? v : 0.0F; }
float ReLU::df(float v, float /*y*/) const noexcept {
  return v > 0.0F ? 1.0F : 0.0F;
}

IntervalVector ReLU::propagate(const IntervalVector& in) const {
  IntervalVector out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i].relu();
  return out;
}

Zonotope ReLU::propagate(const Zonotope& in) const { return in.relu(); }

BoxBatch ReLU::propagate_batch(const BoundBackend& backend,
                               const BoxBatch& in) const {
  return backend.relu(in);
}

// ---- LeakyReLU ------------------------------------------------------------

LeakyReLU::LeakyReLU(Shape shape, float alpha)
    : Activation(std::move(shape)), alpha_(alpha) {
  if (alpha < 0.0F || alpha >= 1.0F) {
    throw std::invalid_argument("LeakyReLU: alpha must be in [0, 1)");
  }
}

std::string LeakyReLU::name() const {
  return "LeakyReLU(" + std::to_string(alpha_) + ")";
}

float LeakyReLU::f(float v) const noexcept {
  return v > 0.0F ? v : alpha_ * v;
}
float LeakyReLU::df(float v, float /*y*/) const noexcept {
  return v > 0.0F ? 1.0F : alpha_;
}

IntervalVector LeakyReLU::propagate(const IntervalVector& in) const {
  IntervalVector out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i].leaky_relu(alpha_);
  }
  return out;
}

Zonotope LeakyReLU::propagate(const Zonotope& in) const {
  return in.leaky_relu(alpha_);
}

BoxBatch LeakyReLU::propagate_batch(const BoundBackend& backend,
                                    const BoxBatch& in) const {
  return backend.leaky_relu(alpha_, in);
}

// ---- Sigmoid ----------------------------------------------------------------

float Sigmoid::f(float v) const noexcept {
  return 1.0F / (1.0F + std::exp(-v));
}
float Sigmoid::df(float /*v*/, float y) const noexcept {
  return y * (1.0F - y);
}

IntervalVector Sigmoid::propagate(const IntervalVector& in) const {
  IntervalVector out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i].sigmoid();
  return out;
}

Zonotope Sigmoid::propagate(const Zonotope& in) const {
  return in.monotone_via_box(
      +[](const Interval& iv) { return iv.sigmoid(); });
}

BoxBatch Sigmoid::propagate_batch(const BoundBackend& backend,
                                  const BoxBatch& in) const {
  // Same scalar expression as Interval::sigmoid's endpoints.
  return backend.monotone(
      +[](float v) { return 1.0F / (1.0F + std::exp(-v)); }, in);
}

// ---- Tanh -----------------------------------------------------------------

float Tanh::f(float v) const noexcept { return std::tanh(v); }
float Tanh::df(float /*v*/, float y) const noexcept { return 1.0F - y * y; }

IntervalVector Tanh::propagate(const IntervalVector& in) const {
  IntervalVector out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i].tanh_();
  return out;
}

Zonotope Tanh::propagate(const Zonotope& in) const {
  return in.monotone_via_box(+[](const Interval& iv) { return iv.tanh_(); });
}

BoxBatch Tanh::propagate_batch(const BoundBackend& backend,
                               const BoxBatch& in) const {
  return backend.monotone(+[](float v) { return std::tanh(v); }, in);
}

}  // namespace ranm
