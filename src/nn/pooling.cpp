#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

namespace ranm {

Pooling::Pooling(const Config& cfg) : cfg_(cfg), oh_(0), ow_(0) {
  if (cfg.channels == 0 || cfg.window == 0 || cfg.stride == 0) {
    throw std::invalid_argument("Pooling: zero-sized configuration");
  }
  if (cfg.in_height < cfg.window || cfg.in_width < cfg.window) {
    throw std::invalid_argument("Pooling: window larger than input");
  }
  oh_ = (cfg.in_height - cfg.window) / cfg.stride + 1;
  ow_ = (cfg.in_width - cfg.window) / cfg.stride + 1;
}

Shape Pooling::input_shape() const {
  return {cfg_.channels, cfg_.in_height, cfg_.in_width};
}

Shape Pooling::output_shape() const { return {cfg_.channels, oh_, ow_}; }

Pool2DGeometry Pooling::geometry() const noexcept {
  Pool2DGeometry g;
  g.channels = cfg_.channels;
  g.in_height = cfg_.in_height;
  g.in_width = cfg_.in_width;
  g.out_height = oh_;
  g.out_width = ow_;
  g.window = cfg_.window;
  g.stride = cfg_.stride;
  return g;
}

// ---- MaxPool2D --------------------------------------------------------------

std::string MaxPool2D::name() const {
  return "MaxPool2D(k=" + std::to_string(cfg_.window) +
         ", s=" + std::to_string(cfg_.stride) + ")";
}

Tensor MaxPool2D::forward(const Tensor& x) {
  if (x.numel() != input_size()) {
    throw std::invalid_argument(name() + ": input size mismatch");
  }
  const float* in = x.data();
  Tensor y(output_shape());
  argmax_.assign(output_size(), 0);
  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t ky = 0; ky < cfg_.window; ++ky) {
          for (std::size_t kx = 0; kx < cfg_.window; ++kx) {
            const std::size_t iy = oy * cfg_.stride + ky;
            const std::size_t ix = ox * cfg_.stride + kx;
            const std::size_t idx =
                (ch * cfg_.in_height + iy) * cfg_.in_width + ix;
            if (in[idx] > best) {
              best = in[idx];
              best_idx = idx;
            }
          }
        }
        const std::size_t out_idx = (ch * oh_ + oy) * ow_ + ox;
        y[out_idx] = best;
        argmax_[out_idx] = best_idx;
      }
    }
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  if (argmax_.empty()) {
    throw std::logic_error(name() + ": backward before forward");
  }
  if (grad_out.numel() != output_size()) {
    throw std::invalid_argument(name() + ": gradient size mismatch");
  }
  Tensor grad_in(input_shape());
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

IntervalVector MaxPool2D::propagate(const IntervalVector& in) const {
  if (in.size() != input_size()) {
    throw std::invalid_argument(name() + ": interval input size mismatch");
  }
  IntervalVector out(output_size());
  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        Interval acc = Interval::make_unchecked(
            -std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity());
        for (std::size_t ky = 0; ky < cfg_.window; ++ky) {
          for (std::size_t kx = 0; kx < cfg_.window; ++kx) {
            const std::size_t iy = oy * cfg_.stride + ky;
            const std::size_t ix = ox * cfg_.stride + kx;
            acc = acc.max_with(
                in[(ch * cfg_.in_height + iy) * cfg_.in_width + ix]);
          }
        }
        out[(ch * oh_ + oy) * ow_ + ox] = acc;
      }
    }
  }
  return out;
}

Zonotope MaxPool2D::propagate(const Zonotope& in) const {
  // Max is not affine; soundly coarsen to the bounding box and pool that.
  return Zonotope::from_box(propagate(in.to_box()));
}

BoxBatch MaxPool2D::propagate_batch(const BoundBackend& backend,
                                    const BoxBatch& in) const {
  return backend.max_pool(geometry(), in);
}

// ---- AvgPool2D --------------------------------------------------------------

std::string AvgPool2D::name() const {
  return "AvgPool2D(k=" + std::to_string(cfg_.window) +
         ", s=" + std::to_string(cfg_.stride) + ")";
}

void AvgPool2D::linear_apply(const float* in, float* out) const noexcept {
  const float inv = 1.0F / static_cast<float>(cfg_.window * cfg_.window);
  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        double acc = 0.0;
        for (std::size_t ky = 0; ky < cfg_.window; ++ky) {
          for (std::size_t kx = 0; kx < cfg_.window; ++kx) {
            const std::size_t iy = oy * cfg_.stride + ky;
            const std::size_t ix = ox * cfg_.stride + kx;
            acc += in[(ch * cfg_.in_height + iy) * cfg_.in_width + ix];
          }
        }
        out[(ch * oh_ + oy) * ow_ + ox] = static_cast<float>(acc) * inv;
      }
    }
  }
}

Tensor AvgPool2D::forward(const Tensor& x) {
  if (x.numel() != input_size()) {
    throw std::invalid_argument(name() + ": input size mismatch");
  }
  Tensor y(output_shape());
  linear_apply(x.data(), y.data());
  return y;
}

Tensor AvgPool2D::backward(const Tensor& grad_out) {
  if (grad_out.numel() != output_size()) {
    throw std::invalid_argument(name() + ": gradient size mismatch");
  }
  const float inv = 1.0F / static_cast<float>(cfg_.window * cfg_.window);
  Tensor grad_in(input_shape());
  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        const float g = grad_out[(ch * oh_ + oy) * ow_ + ox] * inv;
        for (std::size_t ky = 0; ky < cfg_.window; ++ky) {
          for (std::size_t kx = 0; kx < cfg_.window; ++kx) {
            const std::size_t iy = oy * cfg_.stride + ky;
            const std::size_t ix = ox * cfg_.stride + kx;
            grad_in[(ch * cfg_.in_height + iy) * cfg_.in_width + ix] += g;
          }
        }
      }
    }
  }
  return grad_in;
}

IntervalVector AvgPool2D::propagate(const IntervalVector& in) const {
  if (in.size() != input_size()) {
    throw std::invalid_argument(name() + ": interval input size mismatch");
  }
  const double inv = 1.0 / double(cfg_.window * cfg_.window);
  IntervalVector out(output_size());
  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        double lo = 0.0, hi = 0.0;
        for (std::size_t ky = 0; ky < cfg_.window; ++ky) {
          for (std::size_t kx = 0; kx < cfg_.window; ++kx) {
            const std::size_t iy = oy * cfg_.stride + ky;
            const std::size_t ix = ox * cfg_.stride + kx;
            const Interval& iv =
                in[(ch * cfg_.in_height + iy) * cfg_.in_width + ix];
            lo += iv.lo;
            hi += iv.hi;
          }
        }
        out[(ch * oh_ + oy) * ow_ + ox] = Interval::make_unchecked(
            round_down(lo * inv), round_up(hi * inv));
      }
    }
  }
  return out;
}

BoxBatch AvgPool2D::propagate_batch(const BoundBackend& backend,
                                    const BoxBatch& in) const {
  return backend.avg_pool(geometry(), in);
}

Zonotope AvgPool2D::propagate(const Zonotope& in) const {
  if (in.dim() != input_size()) {
    throw std::invalid_argument(name() + ": zonotope input size mismatch");
  }
  const std::size_t od = output_size();
  std::vector<float> center(od);
  linear_apply(in.center().data(), center.data());
  const std::size_t ng = in.num_generators();
  std::vector<float> gens(ng * od);
  for (std::size_t i = 0; i < ng; ++i) {
    linear_apply(in.generator(i).data(), gens.data() + i * od);
  }
  return Zonotope(std::move(center), std::move(gens));
}

}  // namespace ranm
