// First-order optimisers over a network's parameter list.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace ranm {

/// Optimiser interface: binds to parameter/gradient tensor lists once and
/// applies updates in step(). The lists must stay alive and keep their
/// shapes for the optimiser's lifetime.
class Optimizer {
 public:
  Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

 protected:
  /// Updates parameter i in place from gradient i.
  virtual void update(std::size_t i, Tensor& param, const Tensor& grad) = 0;

  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
};

/// Stochastic gradient descent with classical momentum and L2 weight decay.
class SGD final : public Optimizer {
 public:
  struct Config {
    float learning_rate = 0.01F;
    float momentum = 0.9F;
    float weight_decay = 0.0F;
  };
  SGD(std::vector<Tensor*> params, std::vector<Tensor*> grads,
      const Config& cfg);

 protected:
  void update(std::size_t i, Tensor& param, const Tensor& grad) override;

 private:
  Config cfg_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  struct Config {
    float learning_rate = 1e-3F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float epsilon = 1e-8F;
    float weight_decay = 0.0F;
  };
  Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads,
       const Config& cfg);

 protected:
  void update(std::size_t i, Tensor& param, const Tensor& grad) override;

 private:
  Config cfg_;
  std::vector<Tensor> m_, v_;
  std::size_t t_ = 0;
  std::size_t step_of_last_update_ = 0;
};

}  // namespace ranm
