// Fixed elementwise normalisation: y_j = (x_j - mean_j) * inv_std_j.
//
// Deployment networks normalise raw sensor inputs before the first
// trainable layer. The parameters are fixed statistics (not trained), so
// the layer is a pure affine map with exact abstract transformers —
// including through the zonotope domain, where it is generator-preserving.
#pragma once

#include "nn/layer.hpp"

namespace ranm {

/// Per-element (x - mean) * inv_std layer with frozen statistics.
class Normalization final : public Layer {
 public:
  /// Per-element statistics; both vectors must have numel(shape) entries.
  /// inv_std entries must be positive and finite.
  Normalization(Shape shape, std::vector<float> mean,
                std::vector<float> inv_std);
  /// Shared scalar statistics for every element.
  Normalization(Shape shape, float mean, float inv_std);

  [[nodiscard]] std::string name() const override { return "Normalization"; }
  [[nodiscard]] Shape input_shape() const override { return shape_; }
  [[nodiscard]] Shape output_shape() const override { return shape_; }

  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

  [[nodiscard]] const std::vector<float>& mean() const noexcept {
    return mean_;
  }
  [[nodiscard]] const std::vector<float>& inv_std() const noexcept {
    return inv_std_;
  }

 private:
  Shape shape_;
  std::vector<float> mean_, inv_std_;
};

}  // namespace ranm
