// Mini-batch training loop over (input, target) tensor pairs.
#pragma once

#include <functional>
#include <vector>

#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace ranm {

/// Per-epoch training statistics.
struct EpochStats {
  std::size_t epoch = 0;
  float mean_loss = 0.0F;
};

/// Configuration of a training run.
struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 16;
  /// Called after each epoch (e.g. for logging); may be empty.
  std::function<void(const EpochStats&)> on_epoch;
};

/// Trains `net` in place. `inputs` and `targets` must have equal length.
/// Gradients are averaged over each mini-batch; the optimiser is stepped
/// once per batch. Returns per-epoch statistics.
std::vector<EpochStats> train(Network& net, Optimizer& optimizer,
                              const Loss& loss,
                              const std::vector<Tensor>& inputs,
                              const std::vector<Tensor>& targets,
                              const TrainConfig& cfg, Rng& rng);

/// Mean loss of `net` over a dataset (no parameter updates).
float evaluate_loss(Network& net, const Loss& loss,
                    const std::vector<Tensor>& inputs,
                    const std::vector<Tensor>& targets);

/// Classification accuracy in [0, 1]: argmax(prediction) vs target[0].
float evaluate_accuracy(Network& net, const std::vector<Tensor>& inputs,
                        const std::vector<Tensor>& targets);

}  // namespace ranm
