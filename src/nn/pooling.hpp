// Spatial pooling layers over CHW images.
#pragma once

#include "nn/layer.hpp"

namespace ranm {

/// Shared geometry for pooling layers (window k x k, stride s, no padding).
class Pooling : public Layer {
 public:
  struct Config {
    std::size_t channels;
    std::size_t in_height;
    std::size_t in_width;
    std::size_t window = 2;
    std::size_t stride = 2;
  };

  explicit Pooling(const Config& cfg);
  [[nodiscard]] Shape input_shape() const override;
  [[nodiscard]] Shape output_shape() const override;
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 protected:
  /// The window geometry in the form the bound backends consume.
  [[nodiscard]] Pool2DGeometry geometry() const noexcept;

  Config cfg_;
  std::size_t oh_, ow_;
};

/// Max pooling. The zonotope transformer falls back to the bounding box of
/// the input zonotope (sound; maxima are not affine).
class MaxPool2D final : public Pooling {
 public:
  explicit MaxPool2D(const Config& cfg) : Pooling(cfg) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

 private:
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Average pooling (linear, so both abstract transformers are exact).
class AvgPool2D final : public Pooling {
 public:
  explicit AvgPool2D(const Config& cfg) : Pooling(cfg) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& x) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] IntervalVector propagate(
      const IntervalVector& in) const override;
  [[nodiscard]] Zonotope propagate(const Zonotope& in) const override;
  [[nodiscard]] BoxBatch propagate_batch(const BoundBackend& backend,
                                         const BoxBatch& in) const override;

 private:
  void linear_apply(const float* in, float* out) const noexcept;
};

}  // namespace ranm
