#include "bdd/bdd_io.hpp"

#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace ranm::bdd {
namespace {

constexpr std::uint32_t kMagic = 0x42444431U;  // "BDD1"

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("load_bdd: truncated stream");
  return v;
}

void collect_post_order(const BddManager& mgr, NodeRef f,
                        std::vector<NodeRef>& order,
                        std::unordered_map<NodeRef, std::uint32_t>& index) {
  if (index.contains(f)) return;
  if (f != kFalse && f != kTrue) {
    const auto nv = mgr.view(f);
    collect_post_order(mgr, nv.lo, order, index);
    collect_post_order(mgr, nv.hi, order, index);
  }
  index.emplace(f, static_cast<std::uint32_t>(order.size()));
  order.push_back(f);
}

}  // namespace

std::vector<NodeRef> save_bdd(std::ostream& out, const BddManager& mgr,
                              NodeRef f) {
  std::vector<NodeRef> order;
  std::unordered_map<NodeRef, std::uint32_t> index;
  // Terminals always occupy local slots 0 and 1.
  index.emplace(kFalse, 0);
  index.emplace(kTrue, 1);
  order.push_back(kFalse);
  order.push_back(kTrue);
  collect_post_order(mgr, f, order, index);

  write_pod(out, kMagic);
  write_pod(out, mgr.num_vars());
  write_pod(out, static_cast<std::uint32_t>(order.size()));
  for (std::size_t i = 2; i < order.size(); ++i) {
    const auto nv = mgr.view(order[i]);
    write_pod(out, nv.var);
    write_pod(out, index.at(nv.lo));
    write_pod(out, index.at(nv.hi));
  }
  write_pod(out, index.at(f));
  return order;
}

NodeRef load_bdd(std::istream& in, BddManager& mgr) {
  return load_bdd_nodes(in, mgr).root;
}

LoadedBdd load_bdd_nodes(std::istream& in, BddManager& mgr) {
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("load_bdd: bad magic");
  }
  const auto saved_vars = read_pod<std::uint32_t>(in);
  if (saved_vars > mgr.num_vars()) {
    throw std::runtime_error(
        "load_bdd: manager has fewer variables than saved BDD");
  }
  const auto count = read_pod<std::uint32_t>(in);
  if (count < 2) throw std::runtime_error("load_bdd: node count < 2");
  // A corrupted count would make the vector below zero-fill memory before
  // the per-node reads could detect truncation; bound it first. 2^24 is
  // an order of magnitude above the largest benchmarked artifact (~1.5M
  // nodes for the robust 1024-neuron monitor) while keeping the worst
  // hostile up-front allocation at 64 MB.
  if (count > (1U << 24)) {
    throw std::runtime_error("load_bdd: implausible node count");
  }
  std::vector<NodeRef> local(count);
  local[0] = kFalse;
  local[1] = kTrue;
  for (std::uint32_t i = 2; i < count; ++i) {
    const auto var = read_pod<std::uint32_t>(in);
    const auto lo = read_pod<std::uint32_t>(in);
    const auto hi = read_pod<std::uint32_t>(in);
    if (lo >= i || hi >= i) {
      throw std::runtime_error("load_bdd: forward reference");
    }
    local[i] = mgr.make_node_checked(var, local[lo], local[hi]);
  }
  const auto root = read_pod<std::uint32_t>(in);
  if (root >= count) throw std::runtime_error("load_bdd: bad root index");
  return {local[root], std::move(local)};
}

}  // namespace ranm::bdd
