// Binary (de)serialisation of a BDD function.
//
// A monitor trained in the lab ships with the vehicle, so the pattern set
// must round-trip through storage. The format is a topologically sorted
// node list (var, lo, hi) with local indices, preceded by variable count.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "bdd/bdd.hpp"

namespace ranm::bdd {

/// Writes the sub-DAG rooted at `f` to the stream. Returns the manager
/// node for each saved local slot (slot 0 = FALSE, 1 = TRUE, then the
/// internal nodes in file order) so callers can serialise per-node
/// side-channel data — e.g. profile counters — aligned with the format.
std::vector<NodeRef> save_bdd(std::ostream& out, const BddManager& mgr,
                              NodeRef f);

/// Result of load_bdd_nodes: the root plus the manager node each saved
/// local slot deserialised to, in file order (mirrors save_bdd's return).
struct LoadedBdd {
  NodeRef root = kFalse;
  std::vector<NodeRef> nodes;
};

/// Reads a BDD written by save_bdd into `mgr` (which must have at least as
/// many variables as the saved function's largest variable + 1) and returns
/// the root. Throws std::runtime_error on malformed input.
[[nodiscard]] NodeRef load_bdd(std::istream& in, BddManager& mgr);

/// load_bdd variant that also exposes the per-slot node mapping, for
/// loading per-node side-channel data saved alongside the BDD.
[[nodiscard]] LoadedBdd load_bdd_nodes(std::istream& in, BddManager& mgr);

}  // namespace ranm::bdd
