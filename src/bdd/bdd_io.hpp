// Binary (de)serialisation of a BDD function.
//
// A monitor trained in the lab ships with the vehicle, so the pattern set
// must round-trip through storage. The format is a topologically sorted
// node list (var, lo, hi) with local indices, preceded by variable count.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>

#include "bdd/bdd.hpp"

namespace ranm::bdd {

/// Writes the sub-DAG rooted at `f` to the stream.
void save_bdd(std::ostream& out, const BddManager& mgr, NodeRef f);

/// Reads a BDD written by save_bdd into `mgr` (which must have at least as
/// many variables as the saved function's largest variable + 1) and returns
/// the root. Throws std::runtime_error on malformed input.
[[nodiscard]] NodeRef load_bdd(std::istream& in, BddManager& mgr);

}  // namespace ranm::bdd
