#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ranm::bdd {

BddManager::BddManager(std::uint32_t num_vars) : num_vars_(num_vars) {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // node 0 = FALSE
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // node 1 = TRUE
}

NodeRef BddManager::make_node(std::uint32_t v, NodeRef lo, NodeRef hi) {
  if (lo == hi) return lo;  // reduction rule
  const UniqueKey key{v, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const NodeRef ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back({v, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

NodeRef BddManager::make_node_checked(std::uint32_t v, NodeRef lo,
                                      NodeRef hi) {
  if (v >= num_vars_) {
    throw std::invalid_argument("BddManager: variable index out of range");
  }
  if (lo >= nodes_.size() || hi >= nodes_.size()) {
    throw std::invalid_argument("BddManager: child reference out of range");
  }
  if (level(lo) <= v || level(hi) <= v) {
    // levels: terminals have kTerminalVar (huge), so this rejects children
    // at or above v's level, enforcing the variable order.
    throw std::invalid_argument("BddManager: variable order violated");
  }
  return make_node(v, lo, hi);
}

NodeRef BddManager::var(std::uint32_t v) {
  if (v >= num_vars_) {
    throw std::invalid_argument("BddManager::var: index out of range");
  }
  return make_node(v, kFalse, kTrue);
}

NodeRef BddManager::nvar(std::uint32_t v) {
  if (v >= num_vars_) {
    throw std::invalid_argument("BddManager::nvar: index out of range");
  }
  return make_node(v, kTrue, kFalse);
}

NodeRef BddManager::literal(Literal lit) {
  return lit.positive ? var(lit.var) : nvar(lit.var);
}

NodeRef BddManager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const std::uint32_t top =
      std::min({level(f), level(g), level(h)});
  auto cof = [&](NodeRef n, bool hi) -> NodeRef {
    if (level(n) != top) return n;
    return hi ? nodes_[n].hi : nodes_[n].lo;
  };
  const NodeRef hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const NodeRef lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const NodeRef result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

NodeRef BddManager::and_(NodeRef a, NodeRef b) { return ite(a, b, kFalse); }
NodeRef BddManager::or_(NodeRef a, NodeRef b) { return ite(a, kTrue, b); }
NodeRef BddManager::xor_(NodeRef a, NodeRef b) {
  return ite(a, not_(b), b);
}
NodeRef BddManager::not_(NodeRef a) { return ite(a, kFalse, kTrue); }
NodeRef BddManager::implies(NodeRef a, NodeRef b) { return ite(a, b, kTrue); }

NodeRef BddManager::cube(std::span<const CubeBit> bits) {
  if (bits.size() > num_vars_) {
    throw std::invalid_argument("BddManager::cube: more bits than variables");
  }
  // Build bottom-up (highest variable first) for linear node creation.
  NodeRef acc = kTrue;
  for (std::size_t i = bits.size(); i-- > 0;) {
    const auto v = static_cast<std::uint32_t>(i);
    switch (bits[i]) {
      case CubeBit::kDontCare:
        break;
      case CubeBit::kOne:
        acc = make_node(v, kFalse, acc);
        break;
      case CubeBit::kZero:
        acc = make_node(v, acc, kFalse);
        break;
    }
  }
  return acc;
}

NodeRef BddManager::restrict_(NodeRef f, std::uint32_t v, bool value) {
  // Memoised per call: without a memo the recursion revisits shared
  // sub-DAGs and degrades exponentially on wide pattern sets.
  std::unordered_map<NodeRef, NodeRef> memo;
  auto rec = [&](auto&& self, NodeRef n) -> NodeRef {
    if (level(n) > v) return n;  // n does not depend on v (or terminal)
    if (level(n) == v) return value ? nodes_[n].hi : nodes_[n].lo;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const NodeRef lo = self(self, nodes_[n].lo);
    const NodeRef hi = self(self, nodes_[n].hi);
    const NodeRef result = make_node(nodes_[n].var, lo, hi);
    memo.emplace(n, result);
    return result;
  };
  return rec(rec, f);
}

NodeRef BddManager::exists(NodeRef f, std::uint32_t v) {
  return or_(restrict_(f, v, false), restrict_(f, v, true));
}

NodeRef BddManager::flip(NodeRef f, std::uint32_t v) {
  const NodeRef f0 = restrict_(f, v, false);
  const NodeRef f1 = restrict_(f, v, true);
  return ite(var(v), f0, f1);
}

NodeRef BddManager::hamming_expand(NodeRef f,
                                   std::span<const std::uint32_t> vars) {
  NodeRef acc = f;
  for (std::uint32_t v : vars) acc = or_(acc, flip(f, v));
  return acc;
}

std::optional<unsigned> BddManager::min_hamming_distance(
    NodeRef f, const std::vector<bool>& point) const {
  if (point.size() < num_vars_) {
    throw std::invalid_argument(
        "BddManager::min_hamming_distance: point too short");
  }
  constexpr unsigned kInf = ~0U;
  std::unordered_map<NodeRef, unsigned> memo;
  auto rec = [&](auto&& self, NodeRef n) -> unsigned {
    if (n == kFalse) return kInf;
    if (n == kTrue) return 0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const Node& node = nodes_[n];
    const bool want = point[node.var];
    const unsigned agree = self(self, want ? node.hi : node.lo);
    const unsigned disagree = self(self, want ? node.lo : node.hi);
    unsigned best = agree;
    if (disagree != kInf) best = std::min(best, disagree + 1);
    memo.emplace(n, best);
    return best;
  };
  const unsigned d = rec(rec, f);
  if (d == kInf) return std::nullopt;
  return d;
}

bool BddManager::eval(NodeRef f, const std::vector<bool>& assignment) const {
  if (hits_ptr_ != nullptr) {
    return eval_with_profiled(f, [&](std::uint32_t v) {
      if (v >= assignment.size()) {
        throw std::invalid_argument("BddManager::eval: assignment too short");
      }
      return bool(assignment[v]);
    });
  }
  while (f != kFalse && f != kTrue) {
    const Node& n = nodes_[f];
    if (n.var >= assignment.size()) {
      throw std::invalid_argument("BddManager::eval: assignment too short");
    }
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::uint64_t* BddManager::profile_counters() const {
  if (hits_.size() < nodes_.size()) hits_.resize(nodes_.size(), 0);
  hits_ptr_ = hits_.data();
  return hits_ptr_;
}

void BddManager::set_profiling(bool enabled) {
  profiling_ = enabled;
  if (enabled) {
    (void)profile_counters();
  } else {
    hits_ptr_ = nullptr;
  }
}

void BddManager::reset_profile() {
  std::fill(hits_.begin(), hits_.end(), 0);
  queries_ = 0;
}

void BddManager::record_hits(NodeRef n, std::uint64_t count) {
  if (n >= nodes_.size()) {
    throw std::out_of_range("BddManager::record_hits: node out of range");
  }
  if (hits_.size() < nodes_.size()) hits_.resize(nodes_.size(), 0);
  hits_[n] += count;
  if (profiling_) hits_ptr_ = hits_.data();
}

std::uint64_t BddManager::var_hits(std::uint32_t v) const {
  std::uint64_t total = 0;
  const std::size_t n = std::min(hits_.size(), nodes_.size());
  for (std::size_t i = 2; i < n; ++i) {
    if (nodes_[i].var == v) total += hits_[i];
  }
  return total;
}

double BddManager::sat_count(NodeRef f) const {
  std::unordered_map<NodeRef, double> memo;
  // count(n) = number of assignments to variables strictly below n's level
  // that satisfy n, divided appropriately by level gaps.
  auto rec = [&](auto&& self, NodeRef n) -> double {
    if (n == kFalse) return 0.0;
    if (n == kTrue) return 1.0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const Node& node = nodes_[n];
    auto gap = [&](NodeRef child) {
      const std::uint32_t child_level =
          (child == kFalse || child == kTrue) ? num_vars_ : nodes_[child].var;
      return std::pow(2.0, double(child_level) - double(node.var) - 1.0);
    };
    const double c =
        self(self, node.lo) * gap(node.lo) + self(self, node.hi) * gap(node.hi);
    memo.emplace(n, c);
    return c;
  };
  const std::uint32_t root_level =
      (f == kFalse || f == kTrue) ? num_vars_ : nodes_[f].var;
  return rec(rec, f) * std::pow(2.0, double(root_level));
}

void BddManager::collect(NodeRef f, std::vector<NodeRef>& order,
                         std::vector<bool>& seen) const {
  if (seen[f]) return;
  seen[f] = true;
  if (f != kFalse && f != kTrue) {
    collect(nodes_[f].lo, order, seen);
    collect(nodes_[f].hi, order, seen);
  }
  order.push_back(f);
}

std::size_t BddManager::node_count(NodeRef f) const {
  std::vector<NodeRef> order;
  std::vector<bool> seen(nodes_.size(), false);
  collect(f, order, seen);
  return order.size();
}

std::vector<std::uint32_t> BddManager::support(NodeRef f) const {
  std::vector<NodeRef> order;
  std::vector<bool> seen(nodes_.size(), false);
  collect(f, order, seen);
  std::set<std::uint32_t> vars;
  for (NodeRef n : order) {
    if (n != kFalse && n != kTrue) vars.insert(nodes_[n].var);
  }
  return {vars.begin(), vars.end()};
}

std::vector<std::vector<CubeBit>> BddManager::enumerate_cubes(
    NodeRef f) const {
  std::vector<std::vector<CubeBit>> cubes;
  std::vector<CubeBit> current(num_vars_, CubeBit::kDontCare);
  auto rec = [&](auto&& self, NodeRef n) -> void {
    if (n == kFalse) return;
    if (n == kTrue) {
      cubes.push_back(current);
      return;
    }
    const Node& node = nodes_[n];
    current[node.var] = CubeBit::kZero;
    self(self, node.lo);
    current[node.var] = CubeBit::kOne;
    self(self, node.hi);
    current[node.var] = CubeBit::kDontCare;
  };
  rec(rec, f);
  return cubes;
}

std::vector<bool> BddManager::any_sat(NodeRef f) const {
  if (f == kFalse) {
    throw std::invalid_argument("BddManager::any_sat: unsatisfiable");
  }
  std::vector<bool> assignment(num_vars_, false);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.lo != kFalse) {
      assignment[n.var] = false;
      f = n.lo;
    } else {
      assignment[n.var] = true;
      f = n.hi;
    }
  }
  return assignment;
}

std::string BddManager::to_dot(NodeRef f) const {
  std::vector<NodeRef> order;
  std::vector<bool> seen(nodes_.size(), false);
  collect(f, order, seen);
  std::ostringstream out;
  out << "digraph bdd {\n";
  out << "  n0 [label=\"0\", shape=box];\n";
  out << "  n1 [label=\"1\", shape=box];\n";
  for (NodeRef n : order) {
    if (n == kFalse || n == kTrue) continue;
    const Node& node = nodes_[n];
    out << "  n" << n << " [label=\"x" << node.var << "\"];\n";
    out << "  n" << n << " -> n" << node.lo << " [style=dashed];\n";
    out << "  n" << n << " -> n" << node.hi << ";\n";
  }
  out << "}\n";
  return out.str();
}

NodeRef BddManager::swap_adjacent_levels(NodeRef f, std::uint32_t lvl) {
  if (lvl + 1 >= num_vars_) {
    throw std::invalid_argument(
        "BddManager::swap_adjacent_levels: level out of range");
  }
  // g(.., x_l = a, x_{l+1} = b, ..) = f(.., x_l = b, x_{l+1} = a, ..):
  // rebuild every node at or above level l+1 with the two cofactor rows
  // exchanged. Memoised so shared sub-DAGs are visited once.
  std::unordered_map<NodeRef, NodeRef> memo;
  auto rec = [&](NodeRef n) -> NodeRef {
    if (level(n) > lvl + 1) return n;  // below both levels (or terminal)
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    NodeRef result;
    if (level(n) > lvl) {
      // Depends on x_{l+1} but not x_l: x_{l+1}'s decision moves up to
      // level l.
      result = make_node(lvl, nodes_[n].lo, nodes_[n].hi);
    } else {
      const NodeRef f0 = nodes_[n].lo;
      const NodeRef f1 = nodes_[n].hi;
      auto cof = [&](NodeRef c, bool hi) -> NodeRef {
        if (level(c) != lvl + 1) return c;
        return hi ? nodes_[c].hi : nodes_[c].lo;
      };
      // Children of the rebuilt level-(l+1) nodes are below both levels
      // already, so no recursion is needed past the cofactors.
      const NodeRef new_lo = make_node(lvl + 1, cof(f0, false), cof(f1, false));
      const NodeRef new_hi = make_node(lvl + 1, cof(f0, true), cof(f1, true));
      result = make_node(lvl, new_lo, new_hi);
    }
    memo.emplace(n, result);
    return result;
  };
  // Nodes strictly above level l still need their children rewritten.
  std::unordered_map<NodeRef, NodeRef> above;
  auto walk = [&](auto&& self, NodeRef n) -> NodeRef {
    if (level(n) >= lvl) return rec(n);
    auto it = above.find(n);
    if (it != above.end()) return it->second;
    const NodeRef lo = self(self, nodes_[n].lo);
    const NodeRef hi = self(self, nodes_[n].hi);
    const NodeRef result = make_node(nodes_[n].var, lo, hi);
    above.emplace(n, result);
    return result;
  };
  return walk(walk, f);
}

std::string BddManager::to_dot_profiled(NodeRef f,
                                        std::uint64_t queries) const {
  std::vector<NodeRef> order;
  std::vector<bool> seen(nodes_.size(), false);
  collect(f, order, seen);
  std::ostringstream out;
  out << "digraph bdd {\n";
  out << "  n0 [label=\"0\", shape=box];\n";
  out << "  n1 [label=\"1\", shape=box];\n";
  for (NodeRef n : order) {
    if (n == kFalse || n == kTrue) continue;
    const Node& node = nodes_[n];
    const std::uint64_t h = node_hits(n);
    out << "  n" << n << " [label=\"x" << node.var << "\\n" << h;
    if (queries > 0) {
      // Integer per-mille so the rendering is deterministic across
      // platforms (no float formatting).
      const std::uint64_t permille = (h * 1000) / queries;
      out << " (" << (permille / 10) << "." << (permille % 10) << "%)";
      // Shade hot nodes: 9 grey steps from white (cold) to orange (hot).
      const std::uint64_t step = std::min<std::uint64_t>(permille / 112, 8);
      if (step > 0) {
        out << "\", style=filled, fillcolor=\"/oranges9/" << step + 1;
      }
    }
    out << "\"];\n";
    out << "  n" << n << " -> n" << node.lo << " [style=dashed];\n";
    out << "  n" << n << " -> n" << node.hi << ";\n";
  }
  out << "}\n";
  return out.str();
}

BddManager::NodeView BddManager::view(NodeRef n) const {
  if (n >= nodes_.size()) throw std::out_of_range("BddManager::view");
  return {nodes_[n].var, nodes_[n].lo, nodes_[n].hi};
}

}  // namespace ranm::bdd
