// Reduced Ordered Binary Decision Diagrams (Bryant 1992, ref [12] in the
// paper). The paper stores the set of visited activation patterns in a BDD;
// robust construction inserts words with don't-care bits, which a BDD
// represents without enumerating the exponential word set (footnote 2).
//
// Design: a single arena of nodes owned by a BddManager. Node 0 is the
// FALSE terminal, node 1 the TRUE terminal. Variables are dense integers
// 0..num_vars-1 ordered by index (smaller index nearer the root). Nodes are
// hash-consed through a unique table, so structural equality is pointer
// equality — two BDDs are the same function iff they are the same NodeRef.
// Nodes are never garbage collected; monitor workloads allocate a few
// hundred thousand nodes at most.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace ranm::bdd {

/// Reference to a BDD node (index into the manager's arena).
using NodeRef = std::uint32_t;

/// The two terminal nodes have fixed references.
inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

/// A literal: variable index plus polarity.
struct Literal {
  std::uint32_t var = 0;
  bool positive = true;
};

/// Value of a variable inside a cube: false / true / unconstrained.
enum class CubeBit : std::int8_t { kZero = 0, kOne = 1, kDontCare = 2 };

/// Hash-consing BDD manager. All NodeRefs are owned by and only valid with
/// the manager that created them. Not thread-safe.
class BddManager {
 public:
  explicit BddManager(std::uint32_t num_vars);

  [[nodiscard]] std::uint32_t num_vars() const noexcept { return num_vars_; }
  /// Total nodes allocated in the arena (including the two terminals).
  [[nodiscard]] std::size_t arena_size() const noexcept {
    return nodes_.size();
  }

  // -- leaf / variable constructors --------------------------------------
  [[nodiscard]] static constexpr NodeRef false_() noexcept { return kFalse; }
  [[nodiscard]] static constexpr NodeRef true_() noexcept { return kTrue; }
  /// The function "variable v".
  [[nodiscard]] NodeRef var(std::uint32_t v);
  /// The function "not variable v".
  [[nodiscard]] NodeRef nvar(std::uint32_t v);
  /// A literal as a function.
  [[nodiscard]] NodeRef literal(Literal lit);

  // -- boolean combinators ------------------------------------------------
  /// If-then-else: the universal ternary combinator all others reduce to.
  [[nodiscard]] NodeRef ite(NodeRef f, NodeRef g, NodeRef h);
  [[nodiscard]] NodeRef and_(NodeRef a, NodeRef b);
  [[nodiscard]] NodeRef or_(NodeRef a, NodeRef b);
  [[nodiscard]] NodeRef xor_(NodeRef a, NodeRef b);
  [[nodiscard]] NodeRef not_(NodeRef a);
  [[nodiscard]] NodeRef implies(NodeRef a, NodeRef b);

  /// Conjunction of literals; bits[i] == kDontCare contributes nothing.
  /// This is exactly the paper's word2set: constrained bits become
  /// literals, don't-cares are simply absent (footnote 2 — linear size).
  [[nodiscard]] NodeRef cube(std::span<const CubeBit> bits);

  // -- structural operations ----------------------------------------------
  /// Cofactor: f with variable v fixed to `value`.
  [[nodiscard]] NodeRef restrict_(NodeRef f, std::uint32_t v, bool value);
  /// Existential quantification over one variable.
  [[nodiscard]] NodeRef exists(NodeRef f, std::uint32_t v);
  /// f with variable v's polarity flipped: f[v <- !v].
  [[nodiscard]] NodeRef flip(NodeRef f, std::uint32_t v);
  /// All points at Hamming distance <= 1 from f over the given variables
  /// (f itself included): f OR (flip of f in each var). Iterate for radius
  /// r. NOTE: the expanded BDD can grow combinatorially on large pattern
  /// sets; use min_hamming_distance for distance *queries* (O(nodes)) and
  /// reserve expansion for small-radius set enlargement.
  [[nodiscard]] NodeRef hamming_expand(NodeRef f,
                                       std::span<const std::uint32_t> vars);

  /// Smallest Hamming distance from `point` to any satisfying assignment
  /// of f, or nullopt if f is unsatisfiable. Shortest-path dynamic
  /// program over the BDD: variables skipped on a path are free (cost 0),
  /// a branch disagreeing with `point` costs 1. O(reachable nodes).
  [[nodiscard]] std::optional<unsigned> min_hamming_distance(
      NodeRef f, const std::vector<bool>& point) const;

  // -- queries --------------------------------------------------------------
  /// Evaluates f under a total assignment (indexed by variable).
  [[nodiscard]] bool eval(NodeRef f,
                          const std::vector<bool>& assignment) const;
  /// Evaluates f under an assignment supplied by `lookup(var) -> bool`.
  /// The caller guarantees lookup is defined for every variable in f's
  /// support; no per-node bounds check is paid. This is the batch query
  /// hot path: one lookup closure serves a whole batch without building a
  /// std::vector<bool> assignment per sample.
  template <typename Lookup>
  [[nodiscard]] bool eval_with(NodeRef f, Lookup&& lookup) const {
    if (hits_ptr_ != nullptr) return eval_with_profiled(f, lookup);
    while (f != kFalse && f != kTrue) {
      const Node& n = nodes_[f];
      f = lookup(n.var) ? n.hi : n.lo;
    }
    return f == kTrue;
  }

  /// Evaluates f under `n` assignments at once; `lookup(var, i)` supplies
  /// sample i's value of `var`. All samples advance level-synchronously,
  /// so the arena loads of different samples overlap in the memory system
  /// instead of each query serialising on its own root-to-terminal
  /// pointer chase — the throughput shape of the batched membership
  /// query. out[i] receives eval(f, sample i).
  template <typename Lookup>
  void eval_batch(NodeRef f, std::size_t n, Lookup&& lookup,
                  bool* out) const {
    if (hits_ptr_ != nullptr) {
      eval_batch_profiled(f, n, lookup, out);
      return;
    }
    if (f == kFalse || f == kTrue) {
      for (std::size_t i = 0; i < n; ++i) out[i] = f == kTrue;
      return;
    }
    std::vector<NodeRef> cur(n, f);
    std::vector<std::uint32_t> active(n);
    for (std::size_t i = 0; i < n; ++i) {
      active[i] = static_cast<std::uint32_t>(i);
    }
    std::size_t live = n;
    while (live > 0) {
      std::size_t kept = 0;
      for (std::size_t r = 0; r < live; ++r) {
        const std::uint32_t i = active[r];
        const Node& nd = nodes_[cur[i]];
        const NodeRef next = lookup(nd.var, i) ? nd.hi : nd.lo;
        cur[i] = next;
        if (next != kFalse && next != kTrue) active[kept++] = i;
      }
      live = kept;
    }
    for (std::size_t i = 0; i < n; ++i) out[i] = cur[i] == kTrue;
  }
  /// Number of satisfying assignments over all num_vars() variables.
  [[nodiscard]] double sat_count(NodeRef f) const;
  /// Nodes reachable from f (the conventional "BDD size").
  [[nodiscard]] std::size_t node_count(NodeRef f) const;
  /// Variables f actually depends on, ascending.
  [[nodiscard]] std::vector<std::uint32_t> support(NodeRef f) const;
  /// Enumerates the prime-free cube cover obtained by DFS over the graph:
  /// one cube per path to TRUE. Intended for small BDDs (tests,
  /// serialisation of tiny monitors); cost is the number of paths.
  [[nodiscard]] std::vector<std::vector<CubeBit>> enumerate_cubes(
      NodeRef f) const;
  /// Picks one satisfying assignment; f must not be kFalse.
  [[nodiscard]] std::vector<bool> any_sat(NodeRef f) const;

  /// GraphViz dot rendering (debugging aid).
  [[nodiscard]] std::string to_dot(NodeRef f) const;
  /// GraphViz dot rendering annotated with per-node hit counts (from the
  /// profile mode below, or loaded from an artifact). `queries` scales the
  /// counts to percentages; nodes are shaded by hit rate.
  [[nodiscard]] std::string to_dot_profiled(NodeRef f,
                                            std::uint64_t queries) const;

  // -- workload profiling ---------------------------------------------------
  // Per-node hit counters behind a zero-cost-when-off profile mode: the
  // eval hot paths branch once on a raw counter pointer (null when off)
  // and run the unprofiled loop untouched, so disabled profiling costs
  // nothing on the level-synchronous batch sweep.
  /// Enables/disables hit counting on eval/eval_with/eval_batch.
  void set_profiling(bool enabled);
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }
  /// Clears accumulated counters (keeps profiling enabled/disabled as-is).
  void reset_profile();
  /// Hits recorded on one node (0 if never profiled).
  [[nodiscard]] std::uint64_t node_hits(NodeRef n) const noexcept {
    return n < hits_.size() ? hits_[n] : 0;
  }
  /// Adds to a node's hit counter (used when loading persisted profiles).
  void record_hits(NodeRef n, std::uint64_t count);
  /// Total single-sample evaluations profiled so far.
  [[nodiscard]] std::uint64_t profile_queries() const noexcept {
    return queries_;
  }
  /// Adds to the profiled-query total (used when loading persisted
  /// profiles).
  void record_queries(std::uint64_t count) { queries_ += count; }
  /// Sum of hit counters over nodes labelled with variable v.
  [[nodiscard]] std::uint64_t var_hits(std::uint32_t v) const;

  // -- variable reordering --------------------------------------------------
  /// Transposes the variables at `level` and `level + 1` *in the
  /// function*: returns g with g(.., x_l = a, x_{l+1} = b, ..) ==
  /// f(.., x_l = b, x_{l+1} = a, ..). This is the swap-adjacent-levels
  /// primitive classic sifting is built from; the arena is append-only,
  /// so large-scale sifting should go through bdd::ReorderEngine
  /// (reorder.hpp), which swaps levels in place on a compacted copy.
  [[nodiscard]] NodeRef swap_adjacent_levels(NodeRef f, std::uint32_t level);

  // -- raw node access (serialisation) --------------------------------------
  struct NodeView {
    std::uint32_t var;
    NodeRef lo;
    NodeRef hi;
  };
  [[nodiscard]] NodeView view(NodeRef n) const;
  /// Rebuilds a canonical node (used by deserialisation). lo/hi must
  /// already exist; var must be above both children in the order.
  [[nodiscard]] NodeRef make_node_checked(std::uint32_t v, NodeRef lo,
                                          NodeRef hi);

 private:
  struct Node {
    std::uint32_t var;  // kTerminalVar for terminals
    NodeRef lo;
    NodeRef hi;
  };
  static constexpr std::uint32_t kTerminalVar = 0xFFFFFFFFU;

  struct TripleHash {
    std::size_t operator()(const std::uint64_t& k) const noexcept {
      std::uint64_t x = k;
      x ^= x >> 33;
      x *= 0xFF51AFD7ED558CCDULL;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };

  [[nodiscard]] NodeRef make_node(std::uint32_t v, NodeRef lo, NodeRef hi);
  [[nodiscard]] std::uint32_t level(NodeRef n) const noexcept {
    return nodes_[n].var;
  }
  void collect(NodeRef f, std::vector<NodeRef>& order,
               std::vector<bool>& seen) const;

  /// Grows the counter array to cover the arena and refreshes the raw
  /// pointer the hot paths branch on (the arena may have grown since
  /// profiling was enabled).
  std::uint64_t* profile_counters() const;

  template <typename Lookup>
  [[nodiscard]] bool eval_with_profiled(NodeRef f, Lookup&& lookup) const {
    std::uint64_t* hits = profile_counters();
    ++queries_;
    while (f != kFalse && f != kTrue) {
      ++hits[f];
      const Node& n = nodes_[f];
      f = lookup(n.var) ? n.hi : n.lo;
    }
    return f == kTrue;
  }

  template <typename Lookup>
  void eval_batch_profiled(NodeRef f, std::size_t n, Lookup&& lookup,
                           bool* out) const {
    std::uint64_t* hits = profile_counters();
    queries_ += n;
    if (f == kFalse || f == kTrue) {
      for (std::size_t i = 0; i < n; ++i) out[i] = f == kTrue;
      return;
    }
    std::vector<NodeRef> cur(n, f);
    std::vector<std::uint32_t> active(n);
    for (std::size_t i = 0; i < n; ++i) {
      active[i] = static_cast<std::uint32_t>(i);
    }
    std::size_t live = n;
    while (live > 0) {
      std::size_t kept = 0;
      for (std::size_t r = 0; r < live; ++r) {
        const std::uint32_t i = active[r];
        ++hits[cur[i]];
        const Node& nd = nodes_[cur[i]];
        const NodeRef next = lookup(nd.var, i) ? nd.hi : nd.lo;
        cur[i] = next;
        if (next != kFalse && next != kTrue) active[kept++] = i;
      }
      live = kept;
    }
    for (std::size_t i = 0; i < n; ++i) out[i] = cur[i] == kTrue;
  }

  std::uint32_t num_vars_;
  std::vector<Node> nodes_;
  // unique table: (var, lo, hi) -> node. Keys are packed pairs of 64-bit
  // values; we use a map from a 128-bit mix reduced to 64 bits with the
  // full triple stored in the node for verification-free hash consing via
  // open addressing on exact triples.
  struct UniqueKey {
    std::uint32_t var;
    NodeRef lo, hi;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& k) const noexcept {
      std::uint64_t x = (std::uint64_t(k.var) << 40) ^
                        (std::uint64_t(k.lo) << 20) ^ std::uint64_t(k.hi);
      x ^= x >> 33;
      x *= 0xC2B2AE3D27D4EB4FULL;
      x ^= x >> 29;
      return static_cast<std::size_t>(x);
    }
  };
  struct IteKey {
    NodeRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const noexcept {
      std::uint64_t x = (std::uint64_t(k.f) << 42) ^
                        (std::uint64_t(k.g) << 21) ^ std::uint64_t(k.h);
      x ^= x >> 33;
      x *= 0xFF51AFD7ED558CCDULL;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };
  std::unordered_map<UniqueKey, NodeRef, UniqueKeyHash> unique_;
  std::unordered_map<IteKey, NodeRef, IteKeyHash> ite_cache_;

  // Profile state. hits_ptr_ is null whenever profiling is off; the eval
  // templates test only this pointer, keeping the disabled path identical
  // to the pre-profiling code. Counters are mutable because evaluation is
  // const; the manager is documented single-threaded (shards each own one).
  bool profiling_ = false;
  mutable std::vector<std::uint64_t> hits_;
  mutable std::uint64_t* hits_ptr_ = nullptr;
  mutable std::uint64_t queries_ = 0;
};

}  // namespace ranm::bdd
