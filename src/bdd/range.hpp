// Constraints over binary-encoded integers inside a BDD.
//
// The multi-bit interval monitors (paper §III-C) encode each neuron's value
// interval as a B-bit code. A robust insertion must admit every code in a
// contiguous range [a, b] (the codes touched by the conservative bound
// [l_j, u_j]). These helpers build that constraint with O(B) BDD nodes,
// which is what keeps robust word2set insertions linear (footnote 2).
#pragma once

#include <cstdint>
#include <span>

#include "bdd/bdd.hpp"

namespace ranm::bdd {

/// BDD for "the number encoded by `bits` (MSB first) equals value".
[[nodiscard]] NodeRef code_equals(BddManager& mgr,
                                  std::span<const std::uint32_t> bits,
                                  std::uint64_t value);

/// BDD for "encoded number >= value". O(|bits|) nodes.
[[nodiscard]] NodeRef code_geq(BddManager& mgr,
                               std::span<const std::uint32_t> bits,
                               std::uint64_t value);

/// BDD for "encoded number <= value". O(|bits|) nodes.
[[nodiscard]] NodeRef code_leq(BddManager& mgr,
                               std::span<const std::uint32_t> bits,
                               std::uint64_t value);

/// BDD for "lo <= encoded number <= hi". Requires lo <= hi.
[[nodiscard]] NodeRef code_in_range(BddManager& mgr,
                                    std::span<const std::uint32_t> bits,
                                    std::uint64_t lo, std::uint64_t hi);

/// Reads the number encoded by `bits` (MSB first) out of an assignment.
[[nodiscard]] std::uint64_t decode_bits(std::span<const std::uint32_t> bits,
                                        const std::vector<bool>& assignment);

/// Writes `value` into an assignment at the given bit positions (MSB first).
void encode_bits(std::span<const std::uint32_t> bits, std::uint64_t value,
                 std::vector<bool>& assignment);

}  // namespace ranm::bdd
