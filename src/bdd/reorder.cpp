#include "bdd/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ranm::bdd {

ReorderEngine::ReorderEngine(const BddManager& src, NodeRef root)
    : num_vars_(src.num_vars()) {
  nodes_.resize(2);
  nodes_[0].var = kDeadVar;
  nodes_[1].var = kDeadVar;
  head_.assign(num_vars_, kNil);
  count_.assign(num_vars_, 0);
  unique_.resize(num_vars_);
  level_of_var_.resize(num_vars_);
  var_at_level_.resize(num_vars_);
  std::iota(level_of_var_.begin(), level_of_var_.end(), 0U);
  std::iota(var_at_level_.begin(), var_at_level_.end(), 0U);

  // Copy the reachable graph. Recursion depth is bounded by the variable
  // order (levels strictly increase along any path).
  std::unordered_map<NodeRef, std::uint32_t> map;
  map.emplace(kFalse, 0U);
  map.emplace(kTrue, 1U);
  auto rec = [&](auto&& self, NodeRef n) -> std::uint32_t {
    auto it = map.find(n);
    if (it != map.end()) return it->second;
    const BddManager::NodeView nv = src.view(n);
    const std::uint32_t lo = self(self, nv.lo);
    const std::uint32_t hi = self(self, nv.hi);
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back({nv.var, lo, hi, 0, kNil, kNil});
    link(idx);
    unique_[nv.var].emplace(key(lo, hi), idx);
    ++count_[nv.var];
    ++alive_;
    ++nodes_[lo].refs;
    ++nodes_[hi].refs;
    map.emplace(n, idx);
    return idx;
  };
  root_ = rec(rec, root);
  ++nodes_[root_].refs;  // external reference held by the engine
}

void ReorderEngine::link(std::uint32_t n) {
  const std::uint32_t v = nodes_[n].var;
  nodes_[n].prev = kNil;
  nodes_[n].next = head_[v];
  if (head_[v] != kNil) nodes_[head_[v]].prev = n;
  head_[v] = n;
}

void ReorderEngine::unlink(std::uint32_t n) {
  const RNode& nd = nodes_[n];
  if (nd.prev != kNil) {
    nodes_[nd.prev].next = nd.next;
  } else {
    head_[nd.var] = nd.next;
  }
  if (nd.next != kNil) nodes_[nd.next].prev = nd.prev;
}

std::uint32_t ReorderEngine::mk(std::uint32_t var, std::uint32_t lo,
                                std::uint32_t hi) {
  if (lo == hi) {
    ++nodes_[lo].refs;
    return lo;
  }
  auto& tab = unique_[var];
  const auto it = tab.find(key(lo, hi));
  if (it != tab.end()) {
    ++nodes_[it->second].refs;
    return it->second;
  }
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[idx] = {var, lo, hi, 1, kNil, kNil};
  link(idx);
  tab.emplace(key(lo, hi), idx);
  ++count_[var];
  ++alive_;
  ++nodes_[lo].refs;
  ++nodes_[hi].refs;
  return idx;
}

void ReorderEngine::deref(std::uint32_t n) {
  if (is_terminal(n)) return;
  RNode& nd = nodes_[n];
  if (--nd.refs > 0) return;
  unlink(n);
  unique_[nd.var].erase(key(nd.lo, nd.hi));
  --count_[nd.var];
  --alive_;
  const std::uint32_t lo = nd.lo;
  const std::uint32_t hi = nd.hi;
  nd.var = kDeadVar;
  free_.push_back(n);
  deref(lo);
  deref(hi);
}

void ReorderEngine::swap_levels(std::uint32_t level) {
  if (level + 1 >= num_vars_) {
    throw std::invalid_argument("ReorderEngine::swap_levels: out of range");
  }
  const std::uint32_t x = var_at_level_[level];      // moves down
  const std::uint32_t y = var_at_level_[level + 1];  // moves up
  // Snapshot x's nodes: the loop below relabels some of them to y and
  // creates fresh x-nodes, neither of which must be revisited.
  std::vector<std::uint32_t> xs;
  xs.reserve(count_[x]);
  for (std::uint32_t n = head_[x]; n != kNil; n = nodes_[n].next) {
    xs.push_back(n);
  }
  for (const std::uint32_t n : xs) {
    const std::uint32_t f0 = nodes_[n].lo;
    const std::uint32_t f1 = nodes_[n].hi;
    const bool d0 = !is_terminal(f0) && nodes_[f0].var == y;
    const bool d1 = !is_terminal(f1) && nodes_[f1].var == y;
    // Independent of y: the node just ends up one level lower when the
    // level maps swap — no structural change.
    if (!d0 && !d1) continue;
    const std::uint32_t f00 = d0 ? nodes_[f0].lo : f0;
    const std::uint32_t f01 = d0 ? nodes_[f0].hi : f0;
    const std::uint32_t f10 = d1 ? nodes_[f1].lo : f1;
    const std::uint32_t f11 = d1 ? nodes_[f1].hi : f1;
    // n = x ? (y ? f11 : f10) : (y ? f01 : f00)
    //   = y ? (x ? f11 : f01) : (x ? f10 : f00)
    // Rewrite n in place as the y-node so references from above survive.
    const std::uint32_t new_lo = mk(x, f00, f10);
    const std::uint32_t new_hi = mk(x, f01, f11);
    if (new_lo == new_hi) {
      throw std::logic_error("ReorderEngine: swap produced redundant node");
    }
    unique_[x].erase(key(f0, f1));
    unlink(n);
    --count_[x];
    nodes_[n].var = y;
    nodes_[n].lo = new_lo;
    nodes_[n].hi = new_hi;
    link(n);
    ++count_[y];
    if (!unique_[y].emplace(key(new_lo, new_hi), n).second) {
      throw std::logic_error("ReorderEngine: canonicity violated in swap");
    }
    deref(f0);
    deref(f1);
  }
  var_at_level_[level] = y;
  var_at_level_[level + 1] = x;
  level_of_var_[x] = level + 1;
  level_of_var_[y] = level;
  ++swaps_;
}

void ReorderEngine::set_order(
    std::span<const std::uint32_t> target_level_of_var) {
  if (target_level_of_var.size() != num_vars_) {
    throw std::invalid_argument("ReorderEngine::set_order: size mismatch");
  }
  std::vector<std::uint32_t> target_var(num_vars_, kNil);
  for (std::uint32_t v = 0; v < num_vars_; ++v) {
    const std::uint32_t lvl = target_level_of_var[v];
    if (lvl >= num_vars_ || target_var[lvl] != kNil) {
      throw std::invalid_argument(
          "ReorderEngine::set_order: not a permutation");
    }
    target_var[lvl] = v;
  }
  // Selection sort on levels: bubble each level's destined variable up
  // into place with adjacent swaps; everything above `lvl` is final.
  for (std::uint32_t lvl = 0; lvl < num_vars_; ++lvl) {
    const std::uint32_t v = target_var[lvl];
    for (std::uint32_t p = level_of_var_[v]; p > lvl; --p) {
      swap_levels(p - 1);
    }
  }
}

std::size_t ReorderEngine::sift(double max_growth, std::size_t max_passes) {
  if (num_vars_ < 2) return alive_;
  const std::uint32_t last = num_vars_ - 1;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    const std::size_t pass_start = alive_;
    std::vector<std::uint32_t> vars;
    vars.reserve(num_vars_);
    for (std::uint32_t v = 0; v < num_vars_; ++v) {
      if (count_[v] > 0) vars.push_back(v);
    }
    std::stable_sort(vars.begin(), vars.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       if (count_[a] != count_[b]) {
                         return count_[a] > count_[b];
                       }
                       return a < b;
                     });
    for (const std::uint32_t v : vars) {
      std::size_t best = alive_;
      std::uint32_t best_lvl = level_of_var_[v];
      const std::uint32_t start = best_lvl;
      auto down = [&] {
        while (level_of_var_[v] < last) {
          swap_levels(level_of_var_[v]);
          if (alive_ < best) {
            best = alive_;
            best_lvl = level_of_var_[v];
          } else if (double(alive_) > max_growth * double(best)) {
            break;
          }
        }
      };
      auto up = [&] {
        while (level_of_var_[v] > 0) {
          swap_levels(level_of_var_[v] - 1);
          if (alive_ < best) {
            best = alive_;
            best_lvl = level_of_var_[v];
          } else if (double(alive_) > max_growth * double(best)) {
            break;
          }
        }
      };
      // Sweep towards the nearer end first, then across to the other.
      if (start > last - start) {
        up();
        down();
      } else {
        down();
        up();
      }
      while (level_of_var_[v] > best_lvl) swap_levels(level_of_var_[v] - 1);
      while (level_of_var_[v] < best_lvl) swap_levels(level_of_var_[v]);
    }
    // Stop when a pass improves by less than 1%.
    if (alive_ + pass_start / 100 >= pass_start) break;
  }
  return alive_;
}

NodeRef ReorderEngine::rebuild(BddManager& dst) const {
  if (dst.num_vars() < num_vars_) {
    throw std::invalid_argument("ReorderEngine::rebuild: dst too narrow");
  }
  if (is_terminal(root_)) return root_ == 1 ? kTrue : kFalse;
  std::vector<NodeRef> map(nodes_.size(), kFalse);
  map[1] = kTrue;
  // Bottom level first so children are mapped before their parents.
  for (std::uint32_t lvl = num_vars_; lvl-- > 0;) {
    const std::uint32_t v = var_at_level_[lvl];
    for (std::uint32_t n = head_[v]; n != kNil; n = nodes_[n].next) {
      map[n] = dst.make_node_checked(lvl, map[nodes_[n].lo],
                                     map[nodes_[n].hi]);
    }
  }
  return map[root_];
}

namespace {

// 2^61 - 1 (Mersenne prime): products of two residues fit __uint128_t.
constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>((static_cast<__uint128_t>(a) * b) %
                                    kPrime);
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Multilinear extension of the function at point r (indexed by slot):
/// val(terminal) = 0/1, val(node) = (1-r[s])·val(lo) + r[s]·val(hi).
/// Variables absent from a path contribute nothing, so the value is
/// order-independent — exactly what makes it a cross-order invariant.
std::uint64_t poly_eval(const BddManager& m, NodeRef root,
                        std::span<const std::uint32_t> slot_of_level,
                        const std::vector<std::uint64_t>& r) {
  std::unordered_map<NodeRef, std::uint64_t> memo;
  auto rec = [&](auto&& self, NodeRef n) -> std::uint64_t {
    if (n == kFalse) return 0;
    if (n == kTrue) return 1;
    const auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const BddManager::NodeView nv = m.view(n);
    if (nv.var >= slot_of_level.size()) {
      throw std::invalid_argument(
          "equivalent_functions: level outside slot map");
    }
    const std::uint64_t w = r[slot_of_level[nv.var]];
    const std::uint64_t lo = self(self, nv.lo);
    const std::uint64_t hi = self(self, nv.hi);
    const std::uint64_t val =
        (mulmod(kPrime + 1 - w, lo) + mulmod(w, hi)) % kPrime;
    memo.emplace(n, val);
    return val;
  };
  return rec(rec, root);
}

}  // namespace

bool equivalent_functions(const BddManager& a, NodeRef root_a,
                          std::span<const std::uint32_t> slot_of_level_a,
                          const BddManager& b, NodeRef root_b,
                          std::span<const std::uint32_t> slot_of_level_b,
                          std::size_t num_slots, std::uint64_t seed,
                          unsigned rounds) {
  std::uint64_t state = seed ^ 0xA5A5A5A55A5A5A5AULL;
  std::vector<std::uint64_t> r(num_slots);
  for (unsigned round = 0; round < rounds; ++round) {
    for (std::uint64_t& w : r) w = splitmix64(state) % kPrime;
    if (poly_eval(a, root_a, slot_of_level_a, r) !=
        poly_eval(b, root_b, slot_of_level_b, r)) {
      return false;
    }
  }
  return true;
}

}  // namespace ranm::bdd
