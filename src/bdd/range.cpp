#include "bdd/range.hpp"

#include <stdexcept>

namespace ranm::bdd {
namespace {

bool value_bit(std::uint64_t value, std::size_t idx, std::size_t nbits) {
  // idx indexes bits MSB-first.
  return ((value >> (nbits - 1 - idx)) & 1ULL) != 0;
}

}  // namespace

NodeRef code_equals(BddManager& mgr, std::span<const std::uint32_t> bits,
                    std::uint64_t value) {
  NodeRef acc = BddManager::true_();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const NodeRef lit = value_bit(value, i, bits.size()) ? mgr.var(bits[i])
                                                         : mgr.nvar(bits[i]);
    acc = mgr.and_(acc, lit);
  }
  return acc;
}

NodeRef code_geq(BddManager& mgr, std::span<const std::uint32_t> bits,
                 std::uint64_t value) {
  // Build from the least significant bit upward:
  //   geq_i = (b_i == 1) ? ite(x_i, rest_free, geq_{i+1} with strict...)
  // Straight recursion MSB-first: x >= v iff
  //   v_i == 0:  x_i == 1 (rest free)  OR  (x_i == 0 AND rest >= rest(v))
  //   v_i == 1:  x_i == 1 AND rest >= rest(v)
  auto rec = [&](auto&& self, std::size_t i) -> NodeRef {
    if (i == bits.size()) return BddManager::true_();
    const NodeRef rest = self(self, i + 1);
    if (value_bit(value, i, bits.size())) {
      return mgr.ite(mgr.var(bits[i]), rest, BddManager::false_());
    }
    return mgr.ite(mgr.var(bits[i]), BddManager::true_(), rest);
  };
  return rec(rec, 0);
}

NodeRef code_leq(BddManager& mgr, std::span<const std::uint32_t> bits,
                 std::uint64_t value) {
  // x <= v iff
  //   v_i == 1:  x_i == 0 (rest free)  OR  (x_i == 1 AND rest <= rest(v))
  //   v_i == 0:  x_i == 0 AND rest <= rest(v)
  auto rec = [&](auto&& self, std::size_t i) -> NodeRef {
    if (i == bits.size()) return BddManager::true_();
    const NodeRef rest = self(self, i + 1);
    if (value_bit(value, i, bits.size())) {
      return mgr.ite(mgr.var(bits[i]), rest, BddManager::true_());
    }
    return mgr.ite(mgr.var(bits[i]), BddManager::false_(), rest);
  };
  return rec(rec, 0);
}

NodeRef code_in_range(BddManager& mgr, std::span<const std::uint32_t> bits,
                      std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("code_in_range: lo > hi");
  }
  return mgr.and_(code_geq(mgr, bits, lo), code_leq(mgr, bits, hi));
}

std::uint64_t decode_bits(std::span<const std::uint32_t> bits,
                          const std::vector<bool>& assignment) {
  std::uint64_t v = 0;
  for (std::uint32_t b : bits) {
    v = (v << 1) | (assignment[b] ? 1ULL : 0ULL);
  }
  return v;
}

void encode_bits(std::span<const std::uint32_t> bits, std::uint64_t value,
                 std::vector<bool>& assignment) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    assignment[bits[i]] = value_bit(value, i, bits.size());
  }
}

}  // namespace ranm::bdd
