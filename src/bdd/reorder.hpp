// In-place BDD variable reordering (Rudell-style sifting).
//
// BddManager's arena is append-only and hash-consed, which is the right
// shape for construction and querying but hopeless for reordering: a
// single adjacent-level swap expressed functionally (swap_adjacent_levels)
// strands the whole pre-swap graph as garbage, and sifting needs tens of
// thousands of swaps on million-node robust monitors. ReorderEngine
// therefore copies the function into a mutable representation — per-level
// doubly-linked node lists, per-variable unique tables, reference counts —
// where an adjacent swap rewrites only the two affected levels in place
// (nodes keep their identity, so references from above stay valid) and
// dead nodes are reclaimed immediately. After optimisation the result is
// rebuilt into a fresh, garbage-free BddManager whose variable indices are
// the *new levels*; the caller keeps the level_of_var permutation and
// composes it into the monitor's slot order.
//
// Everything here is deterministic: node lists are walked in link order,
// sifting ranks variables by (count desc, index asc), and no container
// with unspecified iteration order ever drives a decision — two runs on
// the same input BDD choose the same order.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"

namespace ranm::bdd {

/// Mutable reordering workspace over a copy of one BDD.
class ReorderEngine {
 public:
  /// Copies the function rooted at `root` out of `src`. The source
  /// manager is not modified and is not referenced after construction.
  ReorderEngine(const BddManager& src, NodeRef root);

  [[nodiscard]] std::uint32_t num_vars() const noexcept { return num_vars_; }
  /// Alive internal (non-terminal) nodes — the quantity sifting minimises.
  [[nodiscard]] std::size_t size() const noexcept { return alive_; }
  /// Adjacent-level swaps performed so far (cost/progress metric).
  [[nodiscard]] std::size_t swap_count() const noexcept { return swaps_; }
  /// Current permutation: level_of_var()[v] is the level variable v sits
  /// at. Identity on construction.
  [[nodiscard]] std::span<const std::uint32_t> level_of_var() const noexcept {
    return level_of_var_;
  }

  /// Exchanges the variables at `level` and `level + 1` in place. The
  /// represented function (in terms of the original variables) is
  /// unchanged; only the order is.
  void swap_levels(std::uint32_t level);

  /// Realises an arbitrary target permutation (level_of_var[v] = desired
  /// level of v) by selection-sorting levels with adjacent swaps.
  void set_order(std::span<const std::uint32_t> target_level_of_var);

  /// Classic sifting: each variable in turn (densest first) is moved
  /// across all levels by adjacent swaps and parked at the position
  /// minimising total size. A direction is abandoned early once the
  /// intermediate size exceeds max_growth × the best size seen. Repeats
  /// up to max_passes passes or until a pass improves by < 1%. Returns
  /// the final size.
  std::size_t sift(double max_growth = 1.2, std::size_t max_passes = 2);

  /// Rebuilds the (reordered) function into `dst`, whose variable indices
  /// are the new levels: a node over original variable v is emitted with
  /// dst-variable level_of_var()[v]. dst.num_vars() must be >= num_vars().
  [[nodiscard]] NodeRef rebuild(BddManager& dst) const;

 private:
  static constexpr std::uint32_t kDeadVar = 0xFFFFFFFFU;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFU;

  struct RNode {
    std::uint32_t var;  // original variable index; kDeadVar when freed
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::uint32_t refs = 0;
    std::uint32_t next = kNil;  // intrusive per-variable list links
    std::uint32_t prev = kNil;
  };

  [[nodiscard]] static bool is_terminal(std::uint32_t n) noexcept {
    return n < 2;
  }
  [[nodiscard]] static std::uint64_t key(std::uint32_t lo,
                                         std::uint32_t hi) noexcept {
    return (std::uint64_t(lo) << 32) | hi;
  }
  [[nodiscard]] std::uint32_t level_of(std::uint32_t n) const noexcept {
    return is_terminal(n) ? num_vars_ : level_of_var_[nodes_[n].var];
  }

  void link(std::uint32_t n);
  void unlink(std::uint32_t n);
  /// Find-or-create (var, lo, hi) with reduction; the returned node has
  /// gained one reference owned by the caller.
  std::uint32_t mk(std::uint32_t var, std::uint32_t lo, std::uint32_t hi);
  /// Drops one reference; reclaims the node (recursively) at zero.
  void deref(std::uint32_t n);

  std::uint32_t num_vars_ = 0;
  std::uint32_t root_ = 0;
  std::size_t alive_ = 0;
  std::size_t swaps_ = 0;
  std::vector<RNode> nodes_;  // [0]/[1] reserved pseudo-terminals
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> head_;      // per-var list head
  std::vector<std::uint32_t> count_;     // per-var alive node count
  std::vector<std::uint32_t> level_of_var_;
  std::vector<std::uint32_t> var_at_level_;
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> unique_;
};

/// Checks that two BDDs — possibly owned by different managers and under
/// different variable orders — represent the same boolean function of a
/// shared slot space. slot_of_level maps each manager's variable index
/// (== level) to the semantic slot it decides. The test evaluates the
/// multilinear extension of both functions at random points of a 61-bit
/// prime field (Schwartz–Zippel): equal functions always agree; distinct
/// functions collide with probability <= num_slots/p per round. Runs
/// `rounds` independent rounds; cost O(nodes) per round.
[[nodiscard]] bool equivalent_functions(
    const BddManager& a, NodeRef root_a,
    std::span<const std::uint32_t> slot_of_level_a, const BddManager& b,
    NodeRef root_b, std::span<const std::uint32_t> slot_of_level_b,
    std::size_t num_slots, std::uint64_t seed, unsigned rounds = 3);

}  // namespace ranm::bdd
