// Traffic-sign OOD detection with neuron selection and multi-layer
// monitoring (the GTSRB-style workload). Demonstrates the §III-A
// extensions: monitoring a subset of neurons picked by training variance,
// and combining monitors across layers with a vote policy.
#include <cstdio>
#include <memory>

#include "core/minmax_monitor.hpp"
#include "core/monitor_builder.hpp"
#include "core/multi_layer_monitor.hpp"
#include "data/signs.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "util/table.hpp"

using namespace ranm;

int main() {
  Rng rng(31);
  SignConfig sign_cfg;
  std::printf("Generating traffic-sign datasets...\n");
  Dataset train_set = make_sign_dataset(sign_cfg, SignVariant::kNominal, 800, rng);
  Dataset test = make_sign_dataset(sign_cfg, SignVariant::kNominal, 500, rng);
  std::vector<std::pair<std::string, std::vector<Tensor>>> ood;
  for (SignVariant v : {SignVariant::kUnseen, SignVariant::kGraffiti,
                        SignVariant::kBlurred}) {
    Dataset ds = make_sign_dataset(sign_cfg, v, 200, rng);
    ood.emplace_back(std::string(sign_variant_name(v)),
                     std::move(ds.inputs));
  }

  std::printf("Training sign classifier...\n");
  Network net = make_small_convnet(sign_cfg.size, sign_cfg.size,
                                   /*conv_channels=*/6, /*hidden=*/32,
                                   kNumSignClasses, rng);
  Adam::Config adam_cfg;
  adam_cfg.learning_rate = 1e-2F;
  Adam optimizer(net.parameters(), net.gradients(), adam_cfg);
  SoftmaxCrossEntropyLoss loss;
  TrainConfig train_cfg;
  train_cfg.epochs = 10;
  train_cfg.batch_size = 16;
  (void)train(net, optimizer, loss, train_set.inputs, train_set.targets, train_cfg,
              rng);
  std::printf("held-out accuracy: %.1f%%\n\n",
              100.0F * evaluate_accuracy(net, test.inputs, test.targets));

  // Monitor the hidden activation (layer 6) on its 16 highest-variance
  // neurons, plus the logits layer (7), combined with an any-vote.
  const std::size_t hidden_layer = 6, logits_layer = 7;
  MonitorBuilder stats_builder(net, hidden_layer);
  NeuronStats stats =
      stats_builder.collect_stats(train_set.inputs, /*keep_samples=*/true);

  auto make_mlm = [&](bool robust) {
    auto mlm = std::make_unique<MultiLayerMonitor>(net, WarnPolicy::kAny);
    const auto selection = NeuronSelection::top_variance(stats, 16);
    mlm->attach(hidden_layer, selection,
                std::make_unique<MinMaxMonitor>(16));
    mlm->attach(logits_layer, NeuronSelection::all(kNumSignClasses),
                std::make_unique<MinMaxMonitor>(kNumSignClasses));
    if (robust) {
      mlm->build_robust(train_set.inputs,
                        PerturbationSpec{0, 0.004F, BoundDomain::kBox});
    } else {
      mlm->build_standard(train_set.inputs);
    }
    return mlm;
  };

  TextTable table("sign monitoring: top-16 hidden neurons + logits, "
                  "any-vote");
  std::vector<std::string> header{"mode", "FP rate"};
  for (const auto& [name, unused] : ood) header.push_back(name);
  table.set_header(header);
  for (bool robust : {false, true}) {
    const auto mlm = make_mlm(robust);
    std::size_t fp = 0;
    for (const Tensor& v : test.inputs) fp += mlm->warns(v);
    std::vector<std::string> cells{
        robust ? "robust" : "standard",
        TextTable::pct(100.0 * double(fp) / double(test.size()), 2)};
    for (const auto& [name, inputs] : ood) {
      std::size_t w = 0;
      for (const Tensor& v : inputs) w += mlm->warns(v);
      cells.push_back(
          TextTable::pct(100.0 * double(w) / double(inputs.size()), 1));
    }
    table.add_row(cells);
  }
  table.print();
  std::printf("\nExpected: robust construction removes the false alarms on "
              "nominal signs while unseen shapes / graffiti / blur remain "
              "detected.\n");
  return 0;
}
