// Out-of-distribution detection on a classification workload: a
// seven-segment digit classifier (the repo's MNIST/GTSRB analogue) with
// on-off and interval monitors watching its hidden layer. Letters,
// inverted video, and heavy noise are flagged while nominal digits pass.
#include <cstdio>
#include <cstdlib>

#include "core/interval_monitor.hpp"
#include "core/monitor_builder.hpp"
#include "core/onoff_monitor.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"

using namespace ranm;

int main() {
  DigitLabConfig cfg;
  cfg.train_samples = 800;
  cfg.test_samples = 500;
  cfg.ood_samples = 200;
  cfg.epochs = 10;
  // Under the ctest smoke entry (RANM_SMOKE=1) shrink to a step budget
  // that finishes in seconds while still exercising the full pipeline.
  if (std::getenv("RANM_SMOKE") != nullptr) {
    cfg.train_samples = 200;
    cfg.test_samples = 100;
    cfg.ood_samples = 60;
    cfg.epochs = 2;
  }
  std::printf("Training 7-segment digit classifier (%zu samples)...\n",
              cfg.train_samples);
  DigitLabSetup setup = make_digit_setup(cfg);
  std::printf("held-out accuracy: %.1f%%\n\n", 100.0F * setup.accuracy);

  MonitorBuilder builder(setup.net, setup.monitor_layer);
  NeuronStats stats =
      builder.collect_stats(setup.train.inputs, /*keep_samples=*/true);

  // Three monitors of increasing granularity, all built robustly with a
  // small input perturbation bound.
  const PerturbationSpec spec{0, 0.01F, BoundDomain::kBox};
  OnOffMonitor onoff(ThresholdSpec::from_means(stats));
  IntervalMonitor two_bit(ThresholdSpec::from_percentiles(stats, 2));
  IntervalMonitor three_bit(ThresholdSpec::from_percentiles(stats, 3));
  builder.build_robust(onoff, setup.train.inputs, spec);
  builder.build_robust(two_bit, setup.train.inputs, spec);
  builder.build_robust(three_bit, setup.train.inputs, spec);

  TextTable table("OOD detection on digit classifier (robust monitors)");
  std::vector<std::string> header{"monitor", "FP rate"};
  for (const auto& [name, unused] : setup.ood) header.push_back(name);
  table.set_header(header);

  auto report = [&](const char* name, const Monitor& m) {
    const auto eval =
        evaluate_monitor(builder, m, setup.test.inputs, setup.ood);
    std::vector<std::string> cells{
        name, TextTable::pct(100 * eval.false_positive_rate, 2)};
    for (const auto& s : eval.detection) {
      cells.push_back(TextTable::pct(100 * s.rate, 1));
    }
    table.add_row(cells);
  };
  report("on-off (1 bit)", onoff);
  report("interval 2-bit", two_bit);
  report("interval 3-bit", three_bit);
  table.print();

  // Quantitative score demo (ref [11]-style): how far (in Hamming
  // distance) is each OOD variant from the accepted pattern set?
  std::printf("\nHamming distance of first 5 'letters' inputs to the "
              "accepted on-off pattern set:\n  ");
  for (int i = 0; i < 5; ++i) {
    const auto f = builder.features(setup.ood[0].second[std::size_t(i)]);
    const auto dist = onoff.hamming_distance(f, 10);
    if (dist) {
      std::printf("%u ", *dist);
    } else {
      std::printf(">10 ");
    }
  }
  std::printf("\n(0 = accepted; larger = further outside the ODD)\n");
  return 0;
}
