// Quickstart: build a provably-robust activation-pattern monitor for a
// small network in ~40 lines of API use.
//
//   1. Train (here: randomly initialise) a network.
//   2. Pick the monitored layer k and collect training features.
//   3. Build a standard monitor and a robust monitor (Definition 1 bounds).
//   4. Query both on in-distribution and out-of-distribution inputs.
#include <cstdio>

#include "core/interval_monitor.hpp"
#include "core/monitor_builder.hpp"
#include "nn/init.hpp"
#include "util/rng.hpp"

using namespace ranm;

int main() {
  Rng rng(2024);

  // A small MLP standing in for a trained perception network.
  Network net = make_mlp({8, 32, 16, 4}, rng);
  const std::size_t k = 4;  // monitor the ReLU after the second Dense

  // "Training data": inputs the network is expected to see in operation.
  std::vector<Tensor> train;
  for (int i = 0; i < 200; ++i) {
    train.push_back(Tensor::random_uniform({8}, rng, -1.0F, 1.0F));
  }

  MonitorBuilder builder(net, k);
  std::printf("monitored layer %zu has %zu neurons\n", k,
              builder.feature_dim());

  // Thresholds for the 2-bit interval monitor from training percentiles.
  NeuronStats stats = builder.collect_stats(train, /*keep_samples=*/true);
  IntervalMonitor standard(ThresholdSpec::from_percentiles(stats, 2));
  IntervalMonitor robust(ThresholdSpec::from_percentiles(stats, 2));

  // Standard construction: abstraction of exact feature vectors.
  builder.build_standard(standard, train);
  // Robust construction: abstraction of worst-case bounds under an
  // L-inf perturbation of radius 0.01 at the input (kp = 0).
  builder.build_robust(robust, train,
                       PerturbationSpec{0, 0.01F, BoundDomain::kBox});

  std::printf("standard monitor: %s\n", standard.describe().c_str());
  std::printf("robust   monitor: %s\n", robust.describe().c_str());

  // Operation time: noisy versions of training inputs (inside the ODD)
  // should not trigger the robust monitor; far-away inputs should.
  int std_fp = 0, rob_fp = 0, std_det = 0, rob_det = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    Tensor in_dist = train[std::size_t(i) % train.size()];
    for (std::size_t j = 0; j < in_dist.numel(); ++j) {
      in_dist[j] += rng.uniform_f(-0.01F, 0.01F);
    }
    std_fp += builder.warns(standard, in_dist);
    rob_fp += builder.warns(robust, in_dist);

    const Tensor far = Tensor::random_uniform({8}, rng, 4.0F, 6.0F);
    std_det += builder.warns(standard, far);
    rob_det += builder.warns(robust, far);
  }
  std::printf("\n%-10s | %-18s | %-18s\n", "monitor", "false-positive rate",
              "OOD detection rate");
  std::printf("%-10s | %17.1f%% | %17.1f%%\n", "standard",
              100.0 * std_fp / n, 100.0 * std_det / n);
  std::printf("%-10s | %17.1f%% | %17.1f%%\n", "robust", 100.0 * rob_fp / n,
              100.0 * rob_det / n);
  std::printf(
      "\nThe robust monitor provably never warns on inputs within the\n"
      "trained perturbation bound (Lemma 1) yet still flags distant "
      "inputs.\n");
  return 0;
}
