// Deployment pipeline: the split the paper's use case implies.
//
//   OFFLINE (lab): train the waypoint network, construct a robust monitor
//   from the training set, serialise both artifacts.
//
//   ONLINE (vehicle): load the artifacts, stream camera frames through
//   the network, and log monitor verdicts — including a simulated ODD
//   departure mid-stream (fog rolls in), which the monitor must flag.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/minmax_monitor.hpp"
#include "core/monitor_builder.hpp"
#include "eval/experiment.hpp"
#include "io/serialize.hpp"

using namespace ranm;

namespace {

void offline_phase(const std::string& net_path,
                   const std::string& monitor_path) {
  std::printf("--- offline (lab) ---\n");
  LabConfig cfg;
  cfg.train_samples = 400;
  cfg.test_samples = 10;  // unused here
  cfg.ood_samples = 1;
  cfg.epochs = 5;
  LabSetup setup = make_lab_setup(cfg);
  std::printf("trained waypoint network, final MSE %.4f\n",
              setup.final_train_loss);

  MonitorBuilder builder(setup.net, setup.monitor_layer);
  MinMaxMonitor monitor(builder.feature_dim());
  builder.build_robust(monitor, setup.train.inputs,
                       PerturbationSpec{0, 0.005F, BoundDomain::kBox});
  std::printf("constructed robust monitor: %s\n",
              monitor.describe().c_str());

  save_network_file(net_path, setup.net);
  {
    std::ofstream out(monitor_path, std::ios::binary);
    save_any_monitor(out, monitor);
  }
  std::printf("artifacts written: %s, %s\n\n", net_path.c_str(),
              monitor_path.c_str());
}

void online_phase(const std::string& net_path,
                  const std::string& monitor_path) {
  std::printf("--- online (vehicle) ---\n");
  Network net = load_network_file(net_path);
  std::ifstream in(monitor_path, std::ios::binary);
  const std::unique_ptr<Monitor> monitor = load_any_monitor(in);
  std::printf("loaded %s\n", monitor->describe().c_str());

  // The monitored layer index is part of the deployment configuration; in
  // this pipeline it is the LeakyReLU after the hidden Dense (layer 6).
  MonitorBuilder builder(net, 6);

  RacetrackConfig track;
  Rng rng(987);
  std::printf("streaming 30 frames (fog rolls in at frame 20):\n");
  int warnings_nominal = 0, warnings_fog = 0;
  for (int frame = 0; frame < 30; ++frame) {
    const TrackScenario scenario =
        frame < 20 ? TrackScenario::kNominal : TrackScenario::kFog;
    const Tensor image = render_track(track, scenario, rng);
    const Tensor waypoint = net.forward(image);
    const bool warn = builder.warns(*monitor, image);
    (frame < 20 ? warnings_nominal : warnings_fog) += warn;
    std::printf("  frame %2d [%-7s] waypoint=(%+.2f, %+.2f)  %s\n", frame,
                frame < 20 ? "nominal" : "FOG",
                waypoint[0], waypoint[1],
                warn ? "** MONITOR WARNING **" : "ok");
  }
  std::printf("\nnominal frames warned: %d/20, fog frames warned: %d/10\n",
              warnings_nominal, warnings_fog);
  std::printf("expected: ~0 nominal warnings (Lemma 1 robustness), most "
              "fog frames flagged.\n");
}

}  // namespace

int main() {
  const std::string net_path = "deployed_net.bin";
  const std::string monitor_path = "deployed_monitor.bin";
  offline_phase(net_path, monitor_path);
  online_phase(net_path, monitor_path);
  return 0;
}
