// Full reproduction of the paper's lab deployment (§IV, Fig. 2): train a
// DNN that generates visual waypoints from (synthetic) race-track images,
// attach standard and robust activation monitors to a close-to-output
// layer, and measure false positives inside the ODD versus detection of
// out-of-ODD scenarios (dark conditions, construction site, ice, ...).
// Finally the monitor is serialised as it would ship with the vehicle.
#include <cstdio>
#include <fstream>

#include "core/minmax_monitor.hpp"
#include "core/monitor_builder.hpp"
#include "core/monitorability.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "io/serialize.hpp"
#include "util/table.hpp"

using namespace ranm;

int main() {
  LabConfig cfg;
  cfg.train_samples = 400;
  cfg.test_samples = 800;
  cfg.ood_samples = 100;
  cfg.epochs = 5;
  std::printf("Training waypoint network on %zu synthetic track images...\n",
              cfg.train_samples);
  LabSetup setup = make_lab_setup(cfg);
  std::printf("final training MSE: %.4f\n", setup.final_train_loss);
  std::printf("network:\n%s", setup.net.summary().c_str());

  MonitorBuilder builder(setup.net, setup.monitor_layer);
  const std::size_t d = builder.feature_dim();
  std::printf("monitoring layer %zu (%zu neurons)\n", setup.monitor_layer,
              d);

  // Monitorability check before committing to this layer (the paper's
  // conclusion raises "networks with better monitorability"; a dead or
  // saturated layer cannot be monitored meaningfully).
  {
    std::vector<std::vector<float>> features;
    features.reserve(setup.train.size());
    for (const Tensor& v : setup.train.inputs) {
      features.push_back(builder.features(v));
    }
    const auto report = analyze_monitorability(features);
    std::printf("monitorability score %.2f (%zu dead / %zu neurons)\n\n",
                report.score, report.dead_count, d);
  }

  MinMaxMonitor standard(d), robust(d);
  builder.build_standard(standard, setup.train.inputs);
  // Robust construction with input-level perturbation Δ = 0.005 — roughly
  // the sensor-noise magnitude that causes the standard monitor's FPs.
  const PerturbationSpec spec{0, 0.005F, BoundDomain::kBox};
  builder.build_robust(robust, setup.train.inputs, spec);

  const auto std_eval =
      evaluate_monitor(builder, standard, setup.test.inputs, setup.ood);
  const auto rob_eval =
      evaluate_monitor(builder, robust, setup.test.inputs, setup.ood);

  TextTable table("race-track lab experiment (cf. paper §IV)");
  std::vector<std::string> header{"monitor", "FP rate"};
  for (const auto& s : rob_eval.detection) header.push_back(s.name);
  table.set_header(header);
  auto row = [&](const char* name, const MonitorEval& eval) {
    std::vector<std::string> cells{name,
                                   TextTable::pct(100 * eval.false_positive_rate)};
    for (const auto& s : eval.detection) {
      cells.push_back(TextTable::pct(100 * s.rate, 1));
    }
    table.add_row(cells);
  };
  row("standard", std_eval);
  row("robust", rob_eval);
  table.print();

  if (std_eval.false_positive_rate > 0) {
    std::printf("\nFP reduction by robust construction: %.0f%%\n",
                100.0 * (1.0 - rob_eval.false_positive_rate /
                                   std_eval.false_positive_rate));
  }

  // Ship the monitor with the vehicle.
  const std::string path = "racetrack_monitor.bin";
  {
    std::ofstream out(path, std::ios::binary);
    save_monitor(out, robust);
  }
  std::ifstream in(path, std::ios::binary);
  const auto loaded = load_minmax_monitor(in);
  std::printf("\nmonitor serialised to %s and reloaded: %s\n", path.c_str(),
              loaded.describe().c_str());
  return 0;
}
