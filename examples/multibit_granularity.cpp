// §III-C of the paper generalises monitors from one bit per neuron to
// multi-bit interval codes. This example shows the granularity trade-off
// on the race-track workload: more bits -> finer abstraction -> higher
// detection but (without robust construction) more false positives; robust
// construction tames the false positives at every bit width.
#include <cstdio>
#include <cstdlib>

#include "core/interval_monitor.hpp"
#include "core/monitor_builder.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"

using namespace ranm;

int main() {
  LabConfig cfg;
  cfg.train_samples = 300;
  cfg.test_samples = 600;
  cfg.ood_samples = 100;
  cfg.epochs = 4;
  // Under the ctest smoke entry (RANM_SMOKE=1) shrink to a step budget
  // that finishes in seconds while still sweeping every bit width.
  if (std::getenv("RANM_SMOKE") != nullptr) {
    cfg.train_samples = 100;
    cfg.test_samples = 120;
    cfg.ood_samples = 40;
    cfg.epochs = 1;
  }
  std::printf("Preparing race-track setup...\n");
  LabSetup setup = make_lab_setup(cfg);

  MonitorBuilder builder(setup.net, setup.monitor_layer);
  NeuronStats stats =
      builder.collect_stats(setup.train.inputs, /*keep_samples=*/true);

  TextTable table("bits per neuron vs FP / detection / BDD size");
  table.set_header({"bits", "mode", "FP rate", "mean detection",
                    "patterns", "bdd nodes"});

  for (std::size_t bits = 1; bits <= 4; ++bits) {
    for (bool robust : {false, true}) {
      IntervalMonitor m(ThresholdSpec::from_percentiles(stats, bits));
      if (robust) {
        builder.build_robust(m, setup.train.inputs,
                             PerturbationSpec{0, 0.003F, BoundDomain::kBox});
      } else {
        builder.build_standard(m, setup.train.inputs);
      }
      const auto eval =
          evaluate_monitor(builder, m, setup.test.inputs, setup.ood);
      table.add_row({std::to_string(bits), robust ? "robust" : "standard",
                     TextTable::pct(100 * eval.false_positive_rate, 2),
                     TextTable::pct(100 * eval.mean_detection(), 1),
                     TextTable::num(m.pattern_count(), 0),
                     std::to_string(m.bdd_node_count())});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: FP grows with bits for standard monitors, robust\n"
      "construction keeps FP near zero while detection stays useful.\n");
  return 0;
}
